package contextual

import (
	"math"
	"math/rand"
	"testing"
)

// synthetic linear ground truth over the feature space.
func truth(x []float64) Targets {
	return Targets{
		Ratio:   0.1 + 0.4*x[1] + 0.2*x[2] - 0.15*x[3],
		Latency: 1e-5 * (1 + 3*x[1]),
		Reward:  0.9 - 0.5*x[1],
	}
}

func randomFeatures(rng *rand.Rand, scratch []float64) []float64 {
	values := make([]float64, 64)
	for i := range values {
		values[i] = rng.NormFloat64() * (1 + 5*rng.Float64())
	}
	return FeaturesInto(scratch, values)
}

// TestPredictorConvergence trains one arm on a seeded synthetic stream
// with a linear ground truth plus small noise and checks the held-out
// prediction error shrinks to the noise floor — the Oikawa et al.
// sequential-estimation property the warm start depends on.
func TestPredictorConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPredictor(1, NumFeatures, 1)
	var x []float64
	for i := 0; i < 400; i++ {
		x = randomFeatures(rng, x)
		y := truth(x)
		y.Ratio += rng.NormFloat64() * 0.01
		y.Reward += rng.NormFloat64() * 0.01
		p.Observe(0, x, y)
	}
	if p.Observations(0) != 400 {
		t.Fatalf("observations = %d, want 400", p.Observations(0))
	}
	var ratioErr, latErr, rewErr float64
	const probes = 200
	for i := 0; i < probes; i++ {
		x = randomFeatures(rng, x)
		want := truth(x)
		got := p.Predict(0, x)
		ratioErr += math.Abs(got.Ratio - want.Ratio)
		latErr += math.Abs(got.Latency - want.Latency)
		rewErr += math.Abs(got.Reward - want.Reward)
	}
	ratioErr /= probes
	latErr /= probes
	rewErr /= probes
	if ratioErr > 0.02 {
		t.Fatalf("mean ratio error %v after 400 samples, want <= 0.02", ratioErr)
	}
	if latErr > 1e-6 {
		t.Fatalf("mean latency error %v, want <= 1e-6", latErr)
	}
	if rewErr > 0.02 {
		t.Fatalf("mean reward error %v, want <= 0.02", rewErr)
	}
}

// TestPredictorImprovesWithData pins the convergence direction: the
// error after 300 samples must be below the error after 10.
func TestPredictorImprovesWithData(t *testing.T) {
	errAfter := func(samples int) float64 {
		rng := rand.New(rand.NewSource(9))
		p := NewPredictor(1, NumFeatures, 1)
		var x []float64
		for i := 0; i < samples; i++ {
			x = randomFeatures(rng, x)
			p.Observe(0, x, truth(x))
		}
		probe := rand.New(rand.NewSource(77))
		var sum float64
		for i := 0; i < 100; i++ {
			x = randomFeatures(probe, x)
			sum += math.Abs(p.Predict(0, x).Ratio - truth(x).Ratio)
		}
		return sum / 100
	}
	early, late := errAfter(10), errAfter(300)
	if late >= early {
		t.Fatalf("error did not shrink: %v after 10 samples, %v after 300", early, late)
	}
}

func TestPredictorDeterministic(t *testing.T) {
	run := func() Targets {
		rng := rand.New(rand.NewSource(5))
		p := NewPredictor(2, NumFeatures, 1)
		var x []float64
		for i := 0; i < 50; i++ {
			x = randomFeatures(rng, x)
			p.Observe(i%2, x, truth(x))
		}
		return p.Predict(0, x)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same stream, different predictions: %+v vs %+v", a, b)
	}
}

func TestPredictorColdAndClamps(t *testing.T) {
	p := NewPredictor(2, NumFeatures, 1)
	x := FeaturesInto(nil, []float64{1, 2, 3, 4})
	if got := p.Predict(0, x); got != (Targets{}) {
		t.Fatalf("cold arm predicts %+v, want zero", got)
	}
	// Strongly negative targets must clamp to the physical ranges.
	for i := 0; i < 20; i++ {
		p.Observe(1, x, Targets{Ratio: -5, Latency: -1, Reward: 7})
	}
	got := p.Predict(1, x)
	if got.Ratio != 0 || got.Latency != 0 || got.Reward != 1 {
		t.Fatalf("clamping failed: %+v", got)
	}
	// Out-of-range arms are ignored, not panics.
	p.Observe(99, x, Targets{})
	if p.Observations(99) != 0 {
		t.Fatal("out-of-range arm recorded an observation")
	}
	p.Reset()
	if p.Observations(1) != 0 {
		t.Fatal("Reset kept observations")
	}
}

func TestPredictorObserveZeroAlloc(t *testing.T) {
	p := NewPredictor(3, NumFeatures, 1)
	x := FeaturesInto(nil, []float64{1, 5, 2, 8, 3, 9})
	y := Targets{Ratio: 0.3, Latency: 1e-5, Reward: 0.7}
	allocs := testing.AllocsPerRun(100, func() {
		p.Observe(1, x, y)
		_ = p.Predict(1, x)
	})
	if allocs != 0 {
		t.Fatalf("Observe+Predict allocate %v times per call", allocs)
	}
}
