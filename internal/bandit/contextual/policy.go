package contextual

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/bandit"
	"repro/internal/obs"
)

// warmWeight is how many pseudo-plays one per-segment prediction is
// worth when blended with an arm's empirical estimate. Small counts let
// the prior steer early selection (the warm start); as real plays
// accumulate the empirical mean dominates and the policy degrades
// gracefully to plain greedy selection even when the predictor is wrong
// (DESIGN.md §11).
const warmWeight = 4.0

// Policy is the contextual bandit policy: ε-greedy over a per-segment
// blend of empirical arm values and externally supplied reward priors
// (typically Predictor outputs for the current segment's features).
// Without priors it behaves like the optimistic ε-greedy baseline, so
// it is safe anywhere a bandit.Policy is expected — including the
// offline pool, which never sets priors.
//
// Exploration is directed: the ε branch plays the least-played allowed
// arm instead of a uniform pick, because the prior already covers the
// "which arm looks good" question and the residual uncertainty is in
// the arms with the least evidence.
type Policy struct {
	mu  sync.Mutex
	cfg bandit.Config
	rng *rand.Rand

	values  []float64 // empirical per-arm estimates (sample average or Step)
	rewards []float64
	counts  []int
	priors  []float64 // per-segment predicted rewards; reset to Optimism

	// selection scratch, guarded by mu
	score      []float64
	cand, ties []int
}

var _ bandit.Policy = (*Policy)(nil)

// New builds the policy for the given arm count.
func New(arms int, cfg bandit.Config) *Policy {
	if arms <= 0 {
		panic(fmt.Sprintf("contextual: invalid arm count %d", arms))
	}
	p := &Policy{cfg: cfg, rng: newRNG(cfg)}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.values = make([]float64, arms)
	p.rewards = make([]float64, arms)
	p.counts = make([]int, arms)
	p.priors = make([]float64, arms)
	p.score = make([]float64, arms)
	p.init()
	return p
}

func (p *Policy) init() {
	for i := range p.values {
		p.values[i] = 0
		p.rewards[i] = 0
		p.counts[i] = 0
		p.priors[i] = p.cfg.Optimism
	}
}

// SetPriors installs this segment's predicted per-arm rewards. The
// engine calls it on the decision goroutine immediately before Select;
// the slice is copied, so callers may reuse their scratch. Arms beyond
// len(priors) keep their previous prior. Cold arms (no prediction yet)
// should be passed the Optimism value so they still get their forced
// early exploration.
//
// adaedge:decision-goroutine
func (p *Policy) SetPriors(priors []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(priors)
	if n > len(p.priors) {
		n = len(p.priors)
	}
	copy(p.priors[:n], priors[:n])
}

// Arms implements bandit.Policy.
func (p *Policy) Arms() int { return len(p.values) }

// Select implements bandit.Policy: argmax over the prior-blended score
// (counts·value + warmWeight·prior)/(counts + warmWeight), with an
// ε-probability directed-exploration branch playing the least-played
// allowed arm. Ties break uniformly at random from the policy RNG, so
// seeded runs reproduce exactly.
//
// adaedge:decision-goroutine
func (p *Policy) Select(allowed []bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cand = allowedArmsInto(p.cand, len(p.values), allowed)
	if len(p.cand) == 0 {
		return -1
	}
	var arm int
	if p.rng.Float64() < p.cfg.Epsilon {
		arm = p.leastPlayed()
	} else {
		for _, a := range p.cand {
			c := float64(p.counts[a])
			p.score[a] = (c*p.values[a] + warmWeight*p.priors[a]) / (c + warmWeight)
		}
		arm = argmaxIn(p.score, p.cand, p.rng, &p.ties)
	}
	p.emitSelect(arm)
	return arm
}

// leastPlayed returns the candidate with the fewest plays, ties broken
// at random. Caller holds mu.
func (p *Policy) leastPlayed() int {
	minCount := math.MaxInt
	ties := p.ties[:0]
	for _, a := range p.cand {
		switch {
		case p.counts[a] < minCount:
			minCount = p.counts[a]
			ties = ties[:0]
			ties = append(ties, a)
		case p.counts[a] == minCount:
			ties = append(ties, a)
		}
	}
	p.ties = ties
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[p.rng.Intn(len(ties))]
}

// Update implements bandit.Policy.
//
// adaedge:decision-goroutine
func (p *Policy) Update(arm int, reward float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if arm < 0 || arm >= len(p.values) {
		return
	}
	p.counts[arm]++
	p.rewards[arm] += reward
	if p.cfg.Step > 0 {
		p.values[arm] += p.cfg.Step * (reward - p.values[arm])
	} else {
		p.values[arm] += (reward - p.values[arm]) / float64(p.counts[arm])
	}
	p.emitUpdate(arm, reward, p.values[arm])
}

// Estimates implements bandit.Policy. The estimates are the empirical
// values only — priors are a per-segment quantity and never leak into
// the cross-segment estimate accessors the speculation and oracle
// layers read.
func (p *Policy) Estimates() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]float64, len(p.values))
	copy(out, p.values)
	return out
}

// EstimatesInto implements bandit.Policy.
func (p *Policy) EstimatesInto(dst []float64) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fillInto(dst, p.values)
}

// RewardsInto implements bandit.Policy.
func (p *Policy) RewardsInto(dst []float64) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fillInto(dst, p.rewards)
}

// Counts implements bandit.Policy.
func (p *Policy) Counts() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.counts))
	copy(out, p.counts)
	return out
}

// Reset implements bandit.Policy.
func (p *Policy) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rng = newRNG(p.cfg)
	p.init()
}

// newRNG mirrors bandit.Config's seeding rule (seed 0 selects a fixed
// default) without reaching into the bandit package's unexported helper.
func newRNG(cfg bandit.Config) *rand.Rand {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// emitSelect and emitUpdate mirror the bandit package's trace events so
// a contextual policy is indistinguishable in the decision trace from
// the plain policies it replaces. Caller holds mu, which serializes the
// events in decision order.
func (p *Policy) emitSelect(arm int) {
	if p.cfg.Trace == nil {
		return
	}
	p.cfg.Trace.Record(obs.Event{Source: p.traceName(), Kind: "select", Arm: arm})
}

func (p *Policy) emitUpdate(arm int, reward, estimate float64) {
	if p.cfg.Trace == nil {
		return
	}
	p.cfg.Trace.Record(obs.Event{Source: p.traceName(), Kind: "update", Arm: arm, Reward: reward, Value: estimate})
}

func (p *Policy) traceName() string {
	if p.cfg.Name == "" {
		return "bandit"
	}
	return p.cfg.Name
}

// fillInto, allowedArmsInto and argmaxIn reimplement the bandit
// package's unexported scratch helpers under the same contracts
// (bandit.go documents them); exporting them for one consumer would
// widen that package's API for no caller benefit.

func fillInto(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func allowedArmsInto(dst []int, n int, allowed []bool) []int {
	if cap(dst) < n {
		dst = make([]int, 0, n)
	}
	out := dst[:0]
	for i := 0; i < n; i++ {
		if allowed == nil || (i < len(allowed) && allowed[i]) {
			out = append(out, i)
		}
	}
	return out
}

func argmaxIn(values []float64, candidates []int, rng *rand.Rand, scratch *[]int) int {
	best := math.Inf(-1)
	ties := (*scratch)[:0]
	for _, a := range candidates {
		switch {
		case values[a] > best:
			best = values[a]
			ties = ties[:0]
			ties = append(ties, a)
		case values[a] == best:
			ties = append(ties, a)
		}
	}
	*scratch = ties
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[rng.Intn(len(ties))]
}
