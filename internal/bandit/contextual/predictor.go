package contextual

// Online ridge regression per arm (recursive least squares with a
// Sherman–Morrison rank-one inverse update). Each arm keeps one shared
// d×d inverse design matrix P = (λI + Σ x xᵀ)⁻¹ and three weight
// vectors — one per predicted target (ratio, encode latency, reward) —
// so a single O(d²) update per observation trains all three heads.
//
// Determinism: Observe and Predict are pure arithmetic over the stored
// state; there is no RNG, no clock, and no map iteration. Feeding the
// same observation sequence always reproduces the same predictions,
// which is what lets the engine's deadline gate depend on them without
// breaking the seeded-trace contract (DESIGN.md §7, §11).
//
// Concurrency: a Predictor is NOT internally synchronized. The engine
// owns it on the decision goroutine, where every Observe/Predict call
// already happens in decision order; adding a lock would only shadow
// the policy mutex discipline the rest of the bandit layer uses.

// Targets bundles the three predicted per-arm quantities.
type Targets struct {
	// Ratio is the achieved compression ratio (compressed/raw).
	Ratio float64
	// Latency is the encode cost in (virtual) seconds. Decisions must
	// stay wall-clock-free, so the engine trains this head from the
	// deterministic cost model, never from measured durations.
	Latency float64
	// Reward is the bandit reward in [0,1] the arm earned.
	Reward float64
}

// numHeads is the number of regression targets sharing each arm's P.
const numHeads = 3

// Predictor is the per-arm RLS state.
type Predictor struct {
	arms, dim int
	ridge     float64

	p  []float64 // arms × dim×dim inverse design matrices
	w  []float64 // arms × numHeads×dim weight vectors
	n  []int     // per-arm observation counts
	px []float64 // scratch: P·x
}

// NewPredictor builds a predictor for arms arms over dim-dimensional
// feature vectors. ridge is the regularizer λ (≤ 0 selects 1), which
// also bounds the initial inverse P = I/λ.
func NewPredictor(arms, dim int, ridge float64) *Predictor {
	if arms <= 0 || dim <= 0 {
		panic("contextual: invalid predictor shape")
	}
	if ridge <= 0 {
		ridge = 1
	}
	p := &Predictor{
		arms:  arms,
		dim:   dim,
		ridge: ridge,
		p:     make([]float64, arms*dim*dim),
		w:     make([]float64, arms*numHeads*dim),
		n:     make([]int, arms),
		px:    make([]float64, dim),
	}
	p.reset()
	return p
}

func (p *Predictor) reset() {
	for i := range p.p {
		p.p[i] = 0
	}
	for i := range p.w {
		p.w[i] = 0
	}
	for a := 0; a < p.arms; a++ {
		base := a * p.dim * p.dim
		for i := 0; i < p.dim; i++ {
			p.p[base+i*p.dim+i] = 1 / p.ridge
		}
	}
	for i := range p.n {
		p.n[i] = 0
	}
}

// Arms returns the arm count.
func (p *Predictor) Arms() int { return p.arms }

// Dim returns the feature dimension.
func (p *Predictor) Dim() int { return p.dim }

// Observations returns how many samples arm has absorbed.
func (p *Predictor) Observations(arm int) int {
	if arm < 0 || arm >= p.arms {
		return 0
	}
	return p.n[arm]
}

// Reset restores the initial (prior-only) state.
func (p *Predictor) Reset() { p.reset() }

// Observe folds one (features, outcomes) sample into arm's model:
// the RLS gain g = P·x / (1 + xᵀP·x) updates every head's weights by
// its own residual, then P absorbs the rank-one term. O(dim²), no
// allocations.
//
// adaedge:decision-goroutine
func (p *Predictor) Observe(arm int, x []float64, t Targets) {
	if arm < 0 || arm >= p.arms || len(x) != p.dim {
		return
	}
	d := p.dim
	P := p.p[arm*d*d : (arm+1)*d*d]

	// px = P·x (P is symmetric); denom = 1 + xᵀ·px.
	denom := 1.0
	for i := 0; i < d; i++ {
		s := 0.0
		row := P[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			s += row[j] * x[j]
		}
		p.px[i] = s
		denom += x[i] * s
	}

	ys := [numHeads]float64{t.Ratio, t.Latency, t.Reward}
	for h := 0; h < numHeads; h++ {
		w := p.w[(arm*numHeads+h)*d : (arm*numHeads+h+1)*d]
		pred := 0.0
		for i := 0; i < d; i++ {
			pred += w[i] * x[i]
		}
		g := (ys[h] - pred) / denom
		for i := 0; i < d; i++ {
			w[i] += p.px[i] * g
		}
	}

	// P ← P − (P·x)(P·x)ᵀ / denom.
	for i := 0; i < d; i++ {
		gi := p.px[i] / denom
		row := P[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] -= gi * p.px[j]
		}
	}
	p.n[arm]++
}

// Predict evaluates arm's three heads at x, clamped to their physical
// ranges (ratio ≥ 0, latency ≥ 0, reward in [0,1]). An arm with zero
// observations predicts the zero vector — callers treat those arms as
// "no prediction" (cold) rather than trusting the prior. Allocation-free.
func (p *Predictor) Predict(arm int, x []float64) Targets {
	if arm < 0 || arm >= p.arms || len(x) != p.dim {
		return Targets{}
	}
	d := p.dim
	var out [numHeads]float64
	for h := 0; h < numHeads; h++ {
		w := p.w[(arm*numHeads+h)*d : (arm*numHeads+h+1)*d]
		s := 0.0
		for i := 0; i < d; i++ {
			s += w[i] * x[i]
		}
		out[h] = s
	}
	t := Targets{Ratio: out[0], Latency: out[1], Reward: out[2]}
	if t.Ratio < 0 {
		t.Ratio = 0
	}
	if t.Latency < 0 {
		t.Latency = 0
	}
	if t.Reward < 0 {
		t.Reward = 0
	}
	if t.Reward > 1 {
		t.Reward = 1
	}
	return t
}
