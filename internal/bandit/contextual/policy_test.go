package contextual

import (
	"reflect"
	"testing"

	"repro/internal/bandit"
	"repro/internal/obs"
)

func TestPolicyPriorsSteerColdSelection(t *testing.T) {
	p := New(4, bandit.Config{Seed: 3})
	p.SetPriors([]float64{0.1, 0.9, 0.2, 0.3})
	// No plays yet: the blended score is exactly the prior, so arm 1
	// wins the cold greedy selection (Epsilon 0 removes the explore
	// branch).
	if arm := p.Select(nil); arm != 1 {
		t.Fatalf("cold selection picked arm %d, want the prior-best arm 1", arm)
	}
	// Sustained zero reward on arm 1 must overcome its prior: with 20
	// plays its blend is 4·0.9/24 = 0.15, below arm 3's untouched 0.3.
	for i := 0; i < 20; i++ {
		p.Update(1, 0.0)
	}
	if arm := p.Select(nil); arm != 3 {
		t.Fatalf("post-evidence selection picked arm %d, want 3 — empirical evidence never overcame the prior", arm)
	}
}

func TestPolicyWithoutPriorsUsesOptimism(t *testing.T) {
	p := New(3, bandit.Config{Optimism: 1, Seed: 5})
	seen := map[int]bool{}
	// With a uniform optimistic prior every arm ties at 1; reward 0
	// pushes a played arm's blend below the others, so the first three
	// greedy picks must cover all arms — the usual optimistic sweep.
	for i := 0; i < 3; i++ {
		arm := p.Select(nil)
		seen[arm] = true
		p.Update(arm, 0)
	}
	if len(seen) != 3 {
		t.Fatalf("optimistic sweep covered %d arms, want 3", len(seen))
	}
}

func TestPolicyRespectsAllowedMask(t *testing.T) {
	p := New(4, bandit.Config{Epsilon: 0.5, Seed: 9})
	p.SetPriors([]float64{0.9, 0.8, 0.7, 0.6})
	allowed := []bool{false, true, false, true}
	for i := 0; i < 50; i++ {
		arm := p.Select(allowed)
		if arm != 1 && arm != 3 {
			t.Fatalf("selected masked arm %d", arm)
		}
		p.Update(arm, 0.5)
	}
	if arm := p.Select([]bool{false, false, false, false}); arm != -1 {
		t.Fatalf("empty mask selected %d, want -1", arm)
	}
}

func TestPolicyDeterministicSequence(t *testing.T) {
	run := func() []int {
		p := New(5, bandit.Config{Epsilon: 0.2, Optimism: 1, Seed: 17})
		var picks []int
		for i := 0; i < 40; i++ {
			p.SetPriors([]float64{0.2, 0.4, 0.6, 0.8, 0.5})
			arm := p.Select(nil)
			picks = append(picks, arm)
			p.Update(arm, float64(arm)/10)
		}
		return picks
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different selection sequences:\n%v\n%v", a, b)
	}
}

func TestPolicyResetRestoresInitialState(t *testing.T) {
	p := New(3, bandit.Config{Optimism: 1, Seed: 21})
	first := p.Select(nil)
	p.Update(first, 0.4)
	p.SetPriors([]float64{0, 0, 0})
	p.Reset()
	if got := p.Select(nil); got != first {
		t.Fatalf("post-Reset first selection %d, want %d", got, first)
	}
	if c := p.Counts(); c[first] != 0 {
		t.Fatal("Reset kept counts")
	}
}

func TestPolicyAccessors(t *testing.T) {
	p := New(2, bandit.Config{Seed: 2})
	p.Update(0, 0.5)
	p.Update(0, 0.7)
	p.Update(1, 0.2)
	est := p.EstimatesInto(nil)
	if len(est) != 2 || est[0] != 0.6 {
		t.Fatalf("estimates = %v, want sample averages with est[0]=0.6", est)
	}
	rew := p.RewardsInto(nil)
	if rew[0] != 1.2 || rew[1] != 0.2 {
		t.Fatalf("rewards = %v", rew)
	}
	if c := p.Counts(); c[0] != 2 || c[1] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if p.Arms() != 2 {
		t.Fatalf("arms = %d", p.Arms())
	}
	if !reflect.DeepEqual(p.Estimates(), est) {
		t.Fatal("Estimates and EstimatesInto disagree")
	}
}

func TestPolicyEmitsTraceEvents(t *testing.T) {
	ring := obs.NewRing(16)
	p := New(2, bandit.Config{Seed: 4, Trace: ring, Name: "bandit.test.ctx"})
	arm := p.Select(nil)
	p.Update(arm, 0.5)
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want select+update", len(evs))
	}
	if evs[0].Source != "bandit.test.ctx" || evs[0].Kind != "select" || evs[0].Arm != arm {
		t.Fatalf("select event = %+v", evs[0])
	}
	if evs[1].Kind != "update" || evs[1].Reward != 0.5 {
		t.Fatalf("update event = %+v", evs[1])
	}
}

func TestPolicySelectZeroAlloc(t *testing.T) {
	p := New(6, bandit.Config{Epsilon: 0.1, Optimism: 1, Seed: 31})
	priors := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	allowed := []bool{true, true, false, true, true, true}
	// Warm the scratch.
	p.SetPriors(priors)
	p.Update(p.Select(allowed), 0.5)
	allocs := testing.AllocsPerRun(100, func() {
		p.SetPriors(priors)
		arm := p.Select(allowed)
		p.Update(arm, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("SetPriors+Select+Update allocate %v times per cycle", allocs)
	}
}
