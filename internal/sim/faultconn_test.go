package sim

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// memConn is a write-capturing net.Conn stub.
type memConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

func (c *memConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	return c.buf.Write(p)
}

func (c *memConn) Read(p []byte) (int, error) { return 0, net.ErrClosed }

func (c *memConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *memConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

func (c *memConn) LocalAddr() net.Addr              { return nil }
func (c *memConn) RemoteAddr() net.Addr             { return nil }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// TestFaultPlanTruncatesAtOutage: a write spanning the up→down boundary
// is truncated at exactly the byte where the link drops, and the torn
// prefix reaches the peer.
func TestFaultPlanTruncatesAtOutage(t *testing.T) {
	link := NewLink(
		LinkPhase{Seconds: 1, Bandwidth: Net4G}, // 100 bytes at rate 100
		LinkPhase{Seconds: 1, Bandwidth: 0},
	)
	plan := NewFaultPlan(link, 100, 0.01)
	under := &memConn{}
	conn := plan.Wrap(under)

	payload := make([]byte, 150)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, err := conn.Write(payload)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset, got n=%d err=%v", n, err)
	}
	if n != 100 {
		t.Fatalf("truncated at %d bytes, want 100", n)
	}
	if got := under.bytes(); !bytes.Equal(got, payload[:100]) {
		t.Fatalf("peer saw %d bytes, want the exact 100-byte prefix", len(got))
	}
	// The connection is sticky-broken.
	if _, err := conn.Write([]byte{1}); err == nil {
		t.Fatal("write after fault must fail")
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after fault must fail")
	}
}

// TestFaultPlanDeterministic: the same traffic against the same plan
// parameters faults at the same byte, twice.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() (int, float64) {
		link := NewLink(
			LinkPhase{Seconds: 0.5, Bandwidth: Net3G},
			LinkPhase{Seconds: 0.25, Bandwidth: 0},
		)
		plan := NewFaultPlan(link, 1000, 0.05)
		conn := plan.Wrap(&memConn{})
		total := 0
		for i := 0; i < 100; i++ {
			n, err := conn.Write(make([]byte, 37))
			total += n
			if err != nil {
				break
			}
		}
		return total, plan.Now()
	}
	n1, vt1 := run()
	n2, vt2 := run()
	if n1 != n2 || vt1 != vt2 {
		t.Fatalf("runs diverged: (%d, %v) vs (%d, %v)", n1, vt1, n2, vt2)
	}
	if n1 != 500 { // 0.5 virtual seconds at 1000 B/s
		t.Fatalf("faulted after %d bytes, want 500", n1)
	}
}

// TestFaultPlanDialGating: dialing is refused during outages, each
// attempt advances virtual time, and enough attempts cross the outage.
func TestFaultPlanDialGating(t *testing.T) {
	link := NewLink(
		LinkPhase{Seconds: 0.1, Bandwidth: 0},
		LinkPhase{Seconds: 1, Bandwidth: Net4G},
	)
	plan := NewFaultPlan(link, 100, 0.02)
	dial := func() (net.Conn, error) { return &memConn{}, nil }
	fails := 0
	for {
		c, err := plan.Dial(dial)
		if err == nil {
			_ = c.Close()
			break
		}
		if !errors.Is(err, ErrLinkDown) {
			t.Fatalf("unexpected dial error %v", err)
		}
		if fails++; fails > 10 {
			t.Fatal("dial never succeeded")
		}
	}
	if fails != 4 { // vt hits 0.02,0.04,...: 5th attempt lands at 0.10, in the up phase
		t.Fatalf("failed dials = %d, want 4", fails)
	}
	total, failed := plan.Dials()
	if total != 5 || failed != 4 {
		t.Fatalf("dial counters = (%d, %d), want (5, 4)", total, failed)
	}
}

// TestFaultPlanScriptedStallAndReset: scripted events fire once, at their
// virtual times, with the right error shapes.
func TestFaultPlanScriptedStallAndReset(t *testing.T) {
	link := NewLink(LinkPhase{Seconds: 1, Bandwidth: Net4G}) // never down
	plan := NewFaultPlan(link, 100, 0.01)
	plan.StallAt(0.5)
	conn := plan.Wrap(&memConn{})
	n, err := conn.Write(make([]byte, 50)) // vt 0 → 0.5, exactly the stall time
	if err != nil || n != 50 {
		t.Fatalf("pre-stall write: n=%d err=%v", n, err)
	}
	n, err = conn.Write(make([]byte, 80)) // stall due before any byte moves
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout-shaped stall, got %v", err)
	}
	if n != 0 {
		t.Fatalf("stall let %d bytes through, want 0", n)
	}

	plan2 := NewFaultPlan(link, 100, 0.01)
	plan2.ResetAt(0.25)
	conn2 := plan2.Wrap(&memConn{})
	n, err = conn2.Write(make([]byte, 80))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset, got %v", err)
	}
	if n != 25 {
		t.Fatalf("reset at byte %d, want 25", n)
	}
	resets, stalls := plan2.Injected()
	if resets != 1 || stalls != 0 {
		t.Fatalf("injected = (%d, %d)", resets, stalls)
	}
}
