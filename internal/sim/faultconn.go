package sim

import (
	"errors"
	"math"
	"net"
	"sort"
	"sync"
)

// Fault injection for the device→collector transport path. A FaultPlan
// wraps real connections and fails them on a deterministic schedule: the
// plan keeps a virtual clock that advances with bytes written (at a
// configured virtual byte rate) and with each dial attempt, and consults a
// Link schedule plus scripted stall/reset events to decide where writes
// break. Because every fault point is a pure function of the byte stream
// and the attempt count — never of wall time — a chaos test that replays
// the same traffic observes the same drops, truncations and stalls on
// every run.
//
// Faults are write-driven: reads pass through untouched and fail only
// because the underlying connection was broken by a write fault (or
// closed). A mid-write outage truncates the write at the byte where the
// link drops, which is exactly the torn-frame shape a real reset
// produces.

// Injected fault errors.
var (
	// ErrLinkDown is returned by Dial while the schedule says the link is
	// disconnected.
	ErrLinkDown = errors.New("sim: link down")
	// ErrInjectedReset is returned by writes that hit an outage or a
	// scripted reset.
	ErrInjectedReset = errors.New("sim: injected connection reset")
)

// stallError reports itself as a timeout, the observable shape of a
// black-holed peer hitting a write deadline.
type stallError struct{}

func (stallError) Error() string   { return "sim: injected stall (write timeout)" }
func (stallError) Timeout() bool   { return true }
func (stallError) Temporary() bool { return true }

// ErrInjectedStall is the timeout-shaped error scripted stalls inject.
var ErrInjectedStall net.Error = stallError{}

// FaultPlan schedules faults for one device's connections.
type FaultPlan struct {
	link     *Link
	rate     float64 // virtual bytes per virtual second
	dialCost float64 // virtual seconds charged per dial attempt

	mu     sync.Mutex
	vt     float64   // virtual time; guarded by mu
	stalls []float64 // pending scripted stall times (sorted); guarded by mu
	resets []float64 // pending scripted reset times (sorted); guarded by mu

	dials, dialFails    int // guarded by mu
	resetCount, stallCt int // guarded by mu
}

// NewFaultPlan builds a plan over a link schedule. bytesPerVirtualSec
// converts written bytes into virtual time (it is the metering rate of
// the virtual clock, not a throughput cap); dialCostSec is the virtual
// time one dial attempt consumes, which is what lets virtual time cross
// an outage while a sender is redialling.
func NewFaultPlan(link *Link, bytesPerVirtualSec, dialCostSec float64) *FaultPlan {
	if bytesPerVirtualSec <= 0 {
		bytesPerVirtualSec = 1
	}
	if dialCostSec <= 0 {
		dialCostSec = 0.01
	}
	return &FaultPlan{link: link, rate: bytesPerVirtualSec, dialCost: dialCostSec}
}

// StallAt schedules write stalls at the given virtual times. Each fires
// once, on the first write at or past its time.
func (p *FaultPlan) StallAt(times ...float64) {
	p.mu.Lock()
	p.stalls = append(p.stalls, times...)
	sort.Float64s(p.stalls)
	p.mu.Unlock()
}

// ResetAt schedules connection resets at the given virtual times, on top
// of the outages the link schedule itself imposes.
func (p *FaultPlan) ResetAt(times ...float64) {
	p.mu.Lock()
	p.resets = append(p.resets, times...)
	sort.Float64s(p.resets)
	p.mu.Unlock()
}

// Now returns the plan's virtual time.
func (p *FaultPlan) Now() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vt
}

// Dials returns total and failed dial attempts.
func (p *FaultPlan) Dials() (total, failed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials, p.dialFails
}

// Injected returns the number of injected resets and stalls.
func (p *FaultPlan) Injected() (resets, stalls int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resetCount, p.stallCt
}

// Dial charges one dial attempt, fails it when the link is down, and
// otherwise runs dial and wraps the resulting connection. It matches the
// transport dialer signature modulo the closed-over address.
func (p *FaultPlan) Dial(dial func() (net.Conn, error)) (net.Conn, error) {
	p.mu.Lock()
	p.vt += p.dialCost
	p.dials++
	up := p.link.Connected(p.vt)
	if !up {
		p.dialFails++
	}
	p.mu.Unlock()
	if !up {
		return nil, ErrLinkDown
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	return p.Wrap(c), nil
}

// Wrap returns conn with the plan's write faults injected.
func (p *FaultPlan) Wrap(conn net.Conn) net.Conn {
	return &faultyConn{Conn: conn, plan: p}
}

// faultyConn injects the plan's faults into Write.
type faultyConn struct {
	net.Conn
	plan *FaultPlan

	mu     sync.Mutex
	broken error // sticky fault; guarded by mu
}

// fail marks the connection broken and closes the underlying conn so the
// peer (and any pending read) observes the failure too.
func (c *faultyConn) fail(err error) error {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	c.mu.Unlock()
	_ = c.Conn.Close()
	return err
}

func (c *faultyConn) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// nextEvent pops the earliest pending scripted event at or before t.
// Caller holds plan.mu.
func popDue(times *[]float64, t float64) bool {
	if len(*times) > 0 && (*times)[0] <= t {
		*times = (*times)[1:]
		return true
	}
	return false
}

func (c *faultyConn) Write(b []byte) (int, error) {
	if err := c.brokenErr(); err != nil {
		return 0, err
	}
	p := c.plan
	written := 0
	for written < len(b) {
		p.mu.Lock()
		vt := p.vt
		if popDue(&p.stalls, vt) {
			p.stallCt++
			p.mu.Unlock()
			return written, c.fail(ErrInjectedStall)
		}
		if popDue(&p.resets, vt) {
			p.resetCount++
			p.mu.Unlock()
			return written, c.fail(ErrInjectedReset)
		}
		up := p.link.UpFor(vt)
		if up <= 0 {
			p.resetCount++
			p.mu.Unlock()
			return written, c.fail(ErrInjectedReset)
		}
		// Horizon: bytes until the link drops or the next scripted event.
		horizon := up
		if len(p.stalls) > 0 && p.stalls[0]-vt < horizon {
			horizon = p.stalls[0] - vt
		}
		if len(p.resets) > 0 && p.resets[0]-vt < horizon {
			horizon = p.resets[0] - vt
		}
		allowed := len(b) - written
		whole := true
		if !(horizon > float64(allowed)/p.rate) {
			allowed = int(horizon * p.rate)
			whole = false
		}
		p.vt += float64(allowed) / p.rate
		if !whole {
			// Land exactly on the boundary so the fault triggers on the
			// next pass regardless of float rounding in the division. A
			// horizon smaller than vt's ulp would leave vt unchanged and
			// spin this loop forever, so force at least one ulp of
			// progress.
			p.vt = vt + horizon
			if p.vt <= vt {
				p.vt = math.Nextafter(vt, math.Inf(1))
			}
		}
		p.mu.Unlock()
		if allowed > 0 {
			n, err := c.Conn.Write(b[written : written+allowed])
			written += n
			if err != nil {
				return written, c.fail(err)
			}
		}
		if !whole && allowed == 0 && written < len(b) {
			// Zero-byte horizon: the fault is immediate; loop once more to
			// pop the event with vt now at the boundary.
			continue
		}
	}
	return written, nil
}

func (c *faultyConn) Read(b []byte) (int, error) {
	if err := c.brokenErr(); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

func (c *faultyConn) Close() error {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = net.ErrClosed
	}
	c.mu.Unlock()
	return c.Conn.Close()
}
