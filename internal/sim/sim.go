package sim

import (
	"errors"
	"fmt"
	"sync"
)

// Bandwidth is a link capacity in bytes per second.
type Bandwidth float64

// Network presets, sized so that a 4 M pts/s double-typed signal (32 MB/s
// raw) reproduces the paper's Fig 3 story: several lossless codecs fit
// under 4G, none under 3G.
const (
	Net2G Bandwidth = 0.04 * 1e6  // ~0.32 Mbps
	Net3G Bandwidth = 1.0 * 1e6   // ~8 Mbps
	Net4G Bandwidth = 12.5 * 1e6  // ~100 Mbps
	Net5G Bandwidth = 125.0 * 1e6 // ~1 Gbps
)

// MBps returns the capacity in megabytes per second.
func (b Bandwidth) MBps() float64 { return float64(b) / 1e6 }

// String implements fmt.Stringer.
func (b Bandwidth) String() string { return fmt.Sprintf("%.2f MB/s", b.MBps()) }

// Carries reports whether an egress rate (bytes/s) fits the link.
func (b Bandwidth) Carries(egressBytesPerSec float64) bool {
	return egressBytesPerSec <= float64(b)
}

// TargetRatio derives the provisional target compression ratio from the
// constraints, the paper's R = B/(64 × I) with B in bits/s and I in
// points/s (§IV-C1). Ratios above 1 are clamped to 1 (no compression
// needed to satisfy the link).
func TargetRatio(ingestPointsPerSec float64, bw Bandwidth) float64 {
	if ingestPointsPerSec <= 0 {
		return 1
	}
	r := float64(bw) * 8 / (64 * ingestPointsPerSec)
	if r > 1 {
		return 1
	}
	return r
}

// ErrBudgetExceeded is returned when an allocation would overflow the
// storage capacity — the hard failure mode of the paper's Fig 14
// (gorilla_fft and gorilla_pla exceeding the budget).
var ErrBudgetExceeded = errors.New("sim: storage budget exceeded")

// Storage is a thread-safe storage budget with a recoding threshold θ:
// when usage crosses θ×capacity the owner must recode to free space.
type Storage struct {
	mu        sync.Mutex
	capacity  int64
	used      int64
	threshold float64
	peak      int64
}

// NewStorage builds a budget of capacity bytes with recoding threshold θ
// in (0,1]; θ of 0 selects the paper's default 0.8.
func NewStorage(capacity int64, threshold float64) *Storage {
	if threshold <= 0 || threshold > 1 {
		threshold = 0.8
	}
	return &Storage{capacity: capacity, threshold: threshold}
}

// Alloc reserves n bytes, failing if capacity would be exceeded.
func (s *Storage) Alloc(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used+n > s.capacity {
		return ErrBudgetExceeded
	}
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
	return nil
}

// Free releases n bytes.
func (s *Storage) Free(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.used -= n
	if s.used < 0 {
		s.used = 0
	}
}

// Resize adjusts an allocation by delta bytes (negative shrinks), failing
// on overflow. Used when a segment is recoded in place.
func (s *Storage) Resize(delta int64) error {
	if delta >= 0 {
		return s.Alloc(delta)
	}
	s.Free(-delta)
	return nil
}

// Used returns the current usage in bytes.
func (s *Storage) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Peak returns the high-water mark.
func (s *Storage) Peak() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// Capacity returns the configured capacity.
func (s *Storage) Capacity() int64 { return s.capacity }

// Threshold returns the recoding threshold θ.
func (s *Storage) Threshold() float64 { return s.threshold }

// Utilization returns used/capacity in [0,1+].
func (s *Storage) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity == 0 {
		return 0
	}
	return float64(s.used) / float64(s.capacity)
}

// OverThreshold reports whether usage has crossed θ×capacity, signalling
// that recoding must run.
func (s *Storage) OverThreshold() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return float64(s.used) > s.threshold*float64(s.capacity)
}

// Clock is a virtual ingestion clock: time advances as data points are
// ingested at the configured signal rate, so experiments replay
// hours-scale workloads in milliseconds while preserving the paper's
// time axes (Figs 12–14).
type Clock struct {
	mu     sync.Mutex
	rate   float64 // points per second
	points int64
}

// NewClock builds a clock for the given signal rate (points/second).
func NewClock(pointsPerSec float64) *Clock {
	if pointsPerSec <= 0 {
		pointsPerSec = 1
	}
	return &Clock{rate: pointsPerSec}
}

// Advance records n ingested points.
func (c *Clock) Advance(n int) {
	c.mu.Lock()
	c.points += int64(n)
	c.mu.Unlock()
}

// Seconds returns the virtual elapsed time.
func (c *Clock) Seconds() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.points) / c.rate
}

// Points returns the ingested point count.
func (c *Clock) Points() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.points
}

// Rate returns the configured signal rate.
func (c *Clock) Rate() float64 { return c.rate }
