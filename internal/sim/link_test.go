package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinkSchedule(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 10, Bandwidth: Net4G},
		LinkPhase{Seconds: 5, Bandwidth: 0}, // disconnected
		LinkPhase{Seconds: 5, Bandwidth: Net3G},
	)
	cases := []struct {
		t    float64
		want Bandwidth
	}{
		{0, Net4G}, {9.99, Net4G},
		{10, 0}, {14.9, 0},
		{15, Net3G}, {19.9, Net3G},
		{20, Net4G}, // cycles
		{35, Net3G}, // second cycle
		{-1, Net4G}, // clamped
	}
	for _, c := range cases {
		if got := l.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if l.CycleSeconds() != 20 {
		t.Fatalf("cycle = %v", l.CycleSeconds())
	}
	if l.Connected(12) {
		t.Fatal("should be disconnected at t=12")
	}
	if !l.Connected(3) {
		t.Fatal("should be connected at t=3")
	}
}

func TestLinkEmpty(t *testing.T) {
	l := NewLink()
	if l.At(5) != 0 || l.Connected(5) {
		t.Fatal("empty link should be permanently down")
	}
	if l.UpFor(5) != 0 {
		t.Fatal("empty link should never be up")
	}
}

func TestLinkZeroDurationPhasesSkipped(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 0, Bandwidth: Net5G},
		LinkPhase{Seconds: 10, Bandwidth: Net2G},
	)
	if got := l.At(1); got != Net2G {
		t.Fatalf("At(1) = %v, want 2G (zero-length phase skipped)", got)
	}
}

// sentinel marks a bandwidth that belongs only to zero-duration phases: a
// correct At must never report it. The old fallback returned the raw last
// schedule entry, leaking the sentinel at the float-rounding boundary
// where the cycle remainder lands at or past the cycle end.
const sentinel Bandwidth = 123456789

// TestLinkTrailingZeroDurationFallback is the regression for the At
// fallback bug: a trailing phase with Seconds <= 0 is skipped by the
// phase walk yet was still returned as the fallback.
func TestLinkTrailingZeroDurationFallback(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 0.25, Bandwidth: Net4G},
		LinkPhase{Seconds: 0.5, Bandwidth: Net3G},
		LinkPhase{Seconds: 0, Bandwidth: sentinel},
		LinkPhase{Seconds: -1, Bandwidth: sentinel},
	)
	cycle := l.CycleSeconds()
	if cycle != 0.75 {
		t.Fatalf("cycle = %v", cycle)
	}
	// Boundary values, including multiples of the cycle and points one
	// ulp either side of them, across many cycles so the rounding of
	// t/cycle gets exercised.
	ts := []float64{0, 0.1, 0.2, 0.3, cycle, 2 * cycle, 1e6 * cycle, 1e9}
	for k := 1; k < 2000; k++ {
		b := float64(k) * cycle
		ts = append(ts, b, math.Nextafter(b, 0), math.Nextafter(b, math.Inf(1)))
	}
	for _, tt := range ts {
		got := l.At(tt)
		if got == sentinel {
			t.Fatalf("At(%v) leaked the zero-duration phase's bandwidth", tt)
		}
		if got != Net4G && got != Net3G {
			t.Fatalf("At(%v) = %v, not a scheduled bandwidth", tt, got)
		}
	}
}

// TestLinkBoundaryTable pins exact boundary semantics: a phase owns
// [start, end).
func TestLinkBoundaryTable(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 1, Bandwidth: Net4G},
		LinkPhase{Seconds: 0, Bandwidth: sentinel},
		LinkPhase{Seconds: 2, Bandwidth: 0},
		LinkPhase{Seconds: 1, Bandwidth: Net3G},
	)
	cases := []struct {
		t    float64
		want Bandwidth
	}{
		{0, Net4G},
		{math.Nextafter(1, 0), Net4G},
		{1, 0},
		{math.Nextafter(3, 0), 0},
		{3, Net3G},
		{math.Nextafter(4, 0), Net3G},
		{4, Net4G}, // wraps
		{8, Net4G},
		{-0.5, Net4G},
	}
	for _, c := range cases {
		if got := l.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

// refAt is an independent reference: expand the positive-duration phases
// into cumulative boundaries and scan.
func refAt(phases []LinkPhase, t float64) Bandwidth {
	var ends []float64
	var bws []Bandwidth
	cum := 0.0
	for _, p := range phases {
		if p.Seconds <= 0 {
			continue
		}
		cum += p.Seconds
		ends = append(ends, cum)
		bws = append(bws, p.Bandwidth)
	}
	if len(ends) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	rem := math.Mod(t, cum)
	if rem < 0 || rem >= cum {
		rem = 0
	}
	for i, end := range ends {
		if rem < end {
			return bws[i]
		}
	}
	return bws[len(bws)-1]
}

// TestLinkAtMatchesReference is the property test: for random schedules
// (zero-duration phases included), At agrees with the reference scan away
// from phase boundaries, and never reports a zero-duration phase's
// bandwidth anywhere.
func TestLinkAtMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		phases := make([]LinkPhase, n)
		scheduled := map[Bandwidth]bool{}
		anyPositive := false
		for i := range phases {
			if rng.Float64() < 0.3 {
				phases[i] = LinkPhase{Seconds: 0, Bandwidth: sentinel}
				continue
			}
			bw := Bandwidth(1 + rng.Intn(5))
			phases[i] = LinkPhase{Seconds: 0.01 + 10*rng.Float64(), Bandwidth: bw}
			scheduled[bw] = true
			anyPositive = true
		}
		l := NewLink(phases...)
		if !anyPositive {
			if l.At(rng.Float64()*100) != 0 {
				t.Fatalf("trial %d: all-zero schedule must be down", trial)
			}
			continue
		}
		cycle := l.CycleSeconds()
		for probe := 0; probe < 200; probe++ {
			tt := (rng.Float64()*6 - 1) * cycle
			got := l.At(tt)
			if got == sentinel {
				t.Fatalf("trial %d: At(%v) leaked a zero-duration bandwidth", trial, tt)
			}
			if !scheduled[got] {
				t.Fatalf("trial %d: At(%v) = %v is not scheduled", trial, tt, got)
			}
			// Compare against the reference away from boundaries, where
			// the two implementations' rounding can legitimately differ.
			if nearBoundary(phases, cycle, tt) {
				continue
			}
			if want := refAt(phases, tt); got != want {
				t.Fatalf("trial %d: At(%v) = %v, reference %v (phases %+v)", trial, tt, got, want, phases)
			}
		}
	}
}

func nearBoundary(phases []LinkPhase, cycle, t float64) bool {
	if t < 0 {
		t = 0
	}
	rem := math.Mod(t, cycle)
	const eps = 1e-6
	if rem < eps || cycle-rem < eps {
		return true
	}
	cum := 0.0
	for _, p := range phases {
		if p.Seconds <= 0 {
			continue
		}
		cum += p.Seconds
		if math.Abs(rem-cum) < eps {
			return true
		}
	}
	return false
}

func TestLinkUpFor(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 10, Bandwidth: Net4G},
		LinkPhase{Seconds: 5, Bandwidth: 0},
		LinkPhase{Seconds: 5, Bandwidth: Net3G},
	)
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 10},
		{4, 6},
		{10, 0},  // down
		{12, 0},  // down
		{15, 15}, // 5s of 3G + wrap into 10s of 4G
		{18, 12},
		{35, 15}, // second cycle
	}
	for _, c := range cases {
		if got := l.UpFor(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("UpFor(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	alwaysUp := NewLink(LinkPhase{Seconds: 3, Bandwidth: Net4G})
	if got := alwaysUp.UpFor(1); !math.IsInf(got, 1) {
		t.Fatalf("always-up link UpFor = %v, want +Inf", got)
	}
}

func TestLinkShifted(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 10, Bandwidth: Net4G},
		LinkPhase{Seconds: 5, Bandwidth: 0},
	)
	for _, off := range []float64{0, 3, 10, 14.5, 15, 27, -5} {
		s := l.Shifted(off)
		// Negative offsets fold into the cycle, so compare a cycle ahead
		// to keep the reference time non-negative.
		ref := off
		for ref < 0 {
			ref += l.CycleSeconds()
		}
		for _, at := range []float64{0, 2, 9.5, 10, 12, 14.9, 20, 31} {
			if got, want := s.At(at), l.At(at+ref); got != want {
				t.Fatalf("Shifted(%v).At(%v) = %v, want %v", off, at, got, want)
			}
			if got, want := s.UpFor(at), l.UpFor(at+ref); math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("Shifted(%v).UpFor(%v) = %v, want %v", off, at, got, want)
			}
		}
	}
	// Shifting a shifted link composes.
	if got, want := l.Shifted(3).Shifted(4).At(0), l.At(7); got != want {
		t.Fatalf("composed shift At(0) = %v, want %v", got, want)
	}
}
