package sim

import "testing"

func TestLinkSchedule(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 10, Bandwidth: Net4G},
		LinkPhase{Seconds: 5, Bandwidth: 0}, // disconnected
		LinkPhase{Seconds: 5, Bandwidth: Net3G},
	)
	cases := []struct {
		t    float64
		want Bandwidth
	}{
		{0, Net4G}, {9.99, Net4G},
		{10, 0}, {14.9, 0},
		{15, Net3G}, {19.9, Net3G},
		{20, Net4G}, // cycles
		{35, Net3G}, // second cycle
		{-1, Net4G}, // clamped
	}
	for _, c := range cases {
		if got := l.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if l.CycleSeconds() != 20 {
		t.Fatalf("cycle = %v", l.CycleSeconds())
	}
	if l.Connected(12) {
		t.Fatal("should be disconnected at t=12")
	}
	if !l.Connected(3) {
		t.Fatal("should be connected at t=3")
	}
}

func TestLinkEmpty(t *testing.T) {
	l := NewLink()
	if l.At(5) != 0 || l.Connected(5) {
		t.Fatal("empty link should be permanently down")
	}
}

func TestLinkZeroDurationPhasesSkipped(t *testing.T) {
	l := NewLink(
		LinkPhase{Seconds: 0, Bandwidth: Net5G},
		LinkPhase{Seconds: 10, Bandwidth: Net2G},
	)
	if got := l.At(1); got != Net2G {
		t.Fatalf("At(1) = %v, want 2G (zero-length phase skipped)", got)
	}
}
