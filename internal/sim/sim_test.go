package sim

import (
	"math"
	"sync"
	"testing"
)

func TestTargetRatio(t *testing.T) {
	// Paper formula R = B/(64 × I), B in bits/s.
	// 4 M pts/s over 4G (12.5 MB/s = 100 Mbps): R = 1e8/(64*4e6) ≈ 0.39.
	got := TargetRatio(4e6, Net4G)
	if math.Abs(got-0.390625) > 1e-9 {
		t.Fatalf("4G target ratio = %v, want 0.390625", got)
	}
	// Over 3G the same signal needs ratio ≈ 0.03: below every lossless
	// codec's reach (the paper's Fig 3 story).
	got3g := TargetRatio(4e6, Net3G)
	if got3g > 0.05 {
		t.Fatalf("3G target ratio = %v, expected < 0.05", got3g)
	}
	// Slow signals need no compression.
	if got := TargetRatio(100, Net5G); got != 1 {
		t.Fatalf("tiny signal ratio = %v, want clamp to 1", got)
	}
	if got := TargetRatio(0, Net2G); got != 1 {
		t.Fatalf("zero rate ratio = %v, want 1", got)
	}
}

func TestBandwidthCarries(t *testing.T) {
	if !Net4G.Carries(10e6) {
		t.Fatal("4G should carry 10 MB/s")
	}
	if Net3G.Carries(10e6) {
		t.Fatal("3G should not carry 10 MB/s")
	}
	if Net2G.MBps() != 0.04 {
		t.Fatalf("2G MBps = %v", Net2G.MBps())
	}
	if Net4G.String() != "12.50 MB/s" {
		t.Fatalf("String = %q", Net4G.String())
	}
}

func TestStorageAllocFree(t *testing.T) {
	s := NewStorage(1000, 0.8)
	if err := s.Alloc(500); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 500 {
		t.Fatalf("used = %d", s.Used())
	}
	if s.OverThreshold() {
		t.Fatal("500/1000 should be under θ=0.8")
	}
	if err := s.Alloc(400); err != nil {
		t.Fatal(err)
	}
	if !s.OverThreshold() {
		t.Fatal("900/1000 should be over θ=0.8")
	}
	if err := s.Alloc(200); err != ErrBudgetExceeded {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	s.Free(900)
	if s.Used() != 0 {
		t.Fatalf("used = %d after free", s.Used())
	}
	if s.Peak() != 900 {
		t.Fatalf("peak = %d, want 900", s.Peak())
	}
}

func TestStorageFreeClampsAtZero(t *testing.T) {
	s := NewStorage(100, 0.5)
	s.Free(50)
	if s.Used() != 0 {
		t.Fatalf("used went negative: %d", s.Used())
	}
}

func TestStorageResize(t *testing.T) {
	s := NewStorage(100, 0.8)
	if err := s.Resize(60); err != nil {
		t.Fatal(err)
	}
	if err := s.Resize(-20); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 40 {
		t.Fatalf("used = %d, want 40", s.Used())
	}
	if err := s.Resize(100); err != ErrBudgetExceeded {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestStorageDefaultThreshold(t *testing.T) {
	s := NewStorage(100, 0)
	if s.Threshold() != 0.8 {
		t.Fatalf("default threshold = %v, want 0.8", s.Threshold())
	}
	s2 := NewStorage(100, 1.5)
	if s2.Threshold() != 0.8 {
		t.Fatalf("invalid threshold should fall back to 0.8, got %v", s2.Threshold())
	}
}

func TestStorageUtilization(t *testing.T) {
	s := NewStorage(200, 0.8)
	s.Alloc(50)
	if got := s.Utilization(); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	empty := NewStorage(0, 0.8)
	if empty.Utilization() != 0 {
		t.Fatal("zero-capacity utilization should be 0")
	}
}

func TestStorageConcurrent(t *testing.T) {
	s := NewStorage(1_000_000, 0.8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if s.Alloc(10) == nil {
					s.Free(10)
				}
			}
		}()
	}
	wg.Wait()
	if s.Used() != 0 {
		t.Fatalf("leaked %d bytes under concurrency", s.Used())
	}
}

func TestClock(t *testing.T) {
	c := NewClock(1000)
	c.Advance(500)
	if got := c.Seconds(); got != 0.5 {
		t.Fatalf("seconds = %v, want 0.5", got)
	}
	c.Advance(1500)
	if got := c.Seconds(); got != 2 {
		t.Fatalf("seconds = %v, want 2", got)
	}
	if c.Points() != 2000 {
		t.Fatalf("points = %d", c.Points())
	}
	if c.Rate() != 1000 {
		t.Fatalf("rate = %v", c.Rate())
	}
}

func TestClockZeroRate(t *testing.T) {
	c := NewClock(0)
	c.Advance(10)
	if c.Seconds() != 10 {
		t.Fatalf("zero-rate clock should default to 1 pt/s, got %v", c.Seconds())
	}
}
