package sim

// Link models a time-varying network connection: a repeating schedule of
// phases, each with a duration (virtual seconds) and a capacity. A
// capacity of zero means disconnected — typical for agriculture, aerospace
// and mining deployments (paper §IV-A2: "the bandwidth changes for a
// cellular network from 0.01 Mbps to 200 Mbps … network disconnection is
// typical for IoT edge devices").
type Link struct {
	phases []LinkPhase
	cycle  float64
}

// LinkPhase is one segment of a link schedule.
type LinkPhase struct {
	// Seconds is the phase duration in virtual time.
	Seconds float64
	// Bandwidth is the capacity during the phase; 0 = disconnected.
	Bandwidth Bandwidth
}

// NewLink builds a link from a schedule that repeats cyclically. An empty
// schedule yields a permanently disconnected link.
func NewLink(phases ...LinkPhase) *Link {
	l := &Link{phases: phases}
	for _, p := range phases {
		if p.Seconds > 0 {
			l.cycle += p.Seconds
		}
	}
	return l
}

// At returns the capacity at virtual time t.
func (l *Link) At(t float64) Bandwidth {
	if len(l.phases) == 0 || l.cycle == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	rem := t - float64(int64(t/l.cycle))*l.cycle
	for _, p := range l.phases {
		if p.Seconds <= 0 {
			continue
		}
		if rem < p.Seconds {
			return p.Bandwidth
		}
		rem -= p.Seconds
	}
	return l.phases[len(l.phases)-1].Bandwidth
}

// Connected reports whether the link is up at virtual time t.
func (l *Link) Connected(t float64) bool { return l.At(t) > 0 }

// CycleSeconds returns the schedule period.
func (l *Link) CycleSeconds() float64 { return l.cycle }
