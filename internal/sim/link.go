package sim

import "math"

// Link models a time-varying network connection: a repeating schedule of
// phases, each with a duration (virtual seconds) and a capacity. A
// capacity of zero means disconnected — typical for agriculture, aerospace
// and mining deployments (paper §IV-A2: "the bandwidth changes for a
// cellular network from 0.01 Mbps to 200 Mbps … network disconnection is
// typical for IoT edge devices").
type Link struct {
	phases []LinkPhase
	cycle  float64
	// offset shifts the schedule in virtual time (see Shifted): the link
	// behaves as if it started offset seconds into its cycle. Fleet
	// simulations shift one shared schedule per device so outages
	// stagger instead of synchronizing.
	offset float64
	// lastBW is the capacity of the last positive-duration phase: the
	// only correct fallback when float rounding lands the cycle remainder
	// at or past the cycle end. The raw last schedule entry may be a
	// zero-duration phase that is never scheduled.
	lastBW Bandwidth
}

// LinkPhase is one segment of a link schedule.
type LinkPhase struct {
	// Seconds is the phase duration in virtual time.
	Seconds float64
	// Bandwidth is the capacity during the phase; 0 = disconnected.
	Bandwidth Bandwidth
}

// NewLink builds a link from a schedule that repeats cyclically. An empty
// schedule yields a permanently disconnected link. Phases with
// non-positive durations are ignored.
func NewLink(phases ...LinkPhase) *Link {
	l := &Link{phases: phases}
	for _, p := range phases {
		if p.Seconds > 0 {
			l.cycle += p.Seconds
			l.lastBW = p.Bandwidth
		}
	}
	return l
}

// Shifted returns a copy of the link whose schedule is advanced by
// offset virtual seconds: Shifted(o).At(t) == l.At(t+o). Negative
// offsets are folded into the cycle, so any stagger value is valid.
func (l *Link) Shifted(offset float64) *Link {
	s := *l
	if l.cycle > 0 {
		offset = math.Mod(offset, l.cycle)
		if offset < 0 {
			offset += l.cycle
		}
	}
	s.offset = l.offset + offset
	return &s
}

// rem maps t onto the cycle, clamped into [0, cycle). math.Mod is exact,
// but the clamp keeps any pathological rounding from producing a
// remainder the phase walk cannot place.
func (l *Link) rem(t float64) float64 {
	t += l.offset
	if t < 0 {
		t = 0
	}
	r := math.Mod(t, l.cycle)
	if r < 0 || r >= l.cycle || math.IsNaN(r) {
		r = 0
	}
	return r
}

// At returns the capacity at virtual time t.
func (l *Link) At(t float64) Bandwidth {
	if len(l.phases) == 0 || l.cycle == 0 {
		return 0
	}
	rem := l.rem(t)
	for _, p := range l.phases {
		if p.Seconds <= 0 {
			continue
		}
		if rem < p.Seconds {
			return p.Bandwidth
		}
		rem -= p.Seconds
	}
	return l.lastBW
}

// Connected reports whether the link is up at virtual time t.
func (l *Link) Connected(t float64) bool { return l.At(t) > 0 }

// UpFor returns how long the link stays connected starting at virtual
// time t: 0 when it is down at t, +Inf when the schedule never
// disconnects. The fault injector uses this to find the byte horizon of
// the next outage.
func (l *Link) UpFor(t float64) float64 {
	if len(l.phases) == 0 || l.cycle == 0 {
		return 0
	}
	rem := l.rem(t)
	idx, off := -1, 0.0
	for i, p := range l.phases {
		if p.Seconds <= 0 {
			continue
		}
		if rem < p.Seconds {
			idx, off = i, rem
			break
		}
		rem -= p.Seconds
	}
	if idx < 0 {
		// Rounding fall-through: t sits at the cycle seam, i.e. the start
		// of the first positive-duration phase.
		for i, p := range l.phases {
			if p.Seconds > 0 {
				idx = i
				break
			}
		}
	}
	if l.phases[idx].Bandwidth <= 0 {
		return 0
	}
	up := l.phases[idx].Seconds - off
	n := len(l.phases)
	for k := 1; k <= n; k++ {
		p := l.phases[(idx+k)%n]
		if p.Seconds <= 0 {
			continue
		}
		if p.Bandwidth <= 0 {
			return up
		}
		up += p.Seconds
	}
	return math.Inf(1)
}

// CycleSeconds returns the schedule period.
func (l *Link) CycleSeconds() float64 { return l.cycle }
