// Package sim models the hardware environment AdaEdge is constrained by:
// network links of fixed capacity, bounded local storage with a recoding
// threshold, and sensor ingestion rates. The paper ran on real servers but
// imposed artificial hard limits ("we set hard limits in the experiments…
// the experiments fail if any of these constraints are breached", §V);
// this package makes those limits explicit, deterministic values.
//
// Bandwidth presets (Net2G…Net5G) are sized so a 4 M pts/s double-typed
// signal reproduces the paper's Fig 3 feasibility story, and
// Bandwidth.TargetRatio derives the online engine's provisional target
// R = B/(64 × I). Storage tracks compressed bytes against a budget with a
// recoding threshold θ, and its accounting feeds the offline engine's
// cascade trigger. Everything here is pure arithmetic over configured
// values — no wall clocks, no randomness — so simulation runs stay
// reproducible across hosts.
package sim
