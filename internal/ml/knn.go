package ml

import "sort"

// KNN is a k-nearest-neighbour classifier over Euclidean distance. Unlike
// tree models it degrades smoothly under lossy compression: predictions
// only change when perturbations move a point across a class boundary
// (paper Fig 7c).
type KNN struct {
	// K is the neighbourhood size.
	K int
	// X and Y are the memorized training rows and labels. Exported for
	// serialization.
	X [][]float64
	Y []int
	// Classes is the number of distinct labels.
	Classes int
}

// FitKNN memorizes the training set. k of 0 selects 5.
func FitKNN(X [][]float64, y []int, k int) (*KNN, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 5
	}
	if k > len(X) {
		k = len(X)
	}
	cx := make([][]float64, len(X))
	for i, row := range X {
		cx[i] = append([]float64(nil), row...)
	}
	return &KNN{K: k, X: cx, Y: append([]int(nil), y...), Classes: maxLabel(y) + 1}, nil
}

// Predict implements Classifier.
func (m *KNN) Predict(x []float64) int {
	type nd struct {
		d float64
		y int
		i int
	}
	nearest := make([]nd, 0, m.K+1)
	worst := -1.0
	for i, row := range m.X {
		d := euclideanSq(x, row)
		if len(nearest) < m.K {
			nearest = append(nearest, nd{d, m.Y[i], i})
			if d > worst {
				worst = d
			}
			continue
		}
		if d >= worst {
			continue
		}
		// Replace the current farthest.
		fi, fd := 0, -1.0
		for j, e := range nearest {
			if e.d > fd {
				fi, fd = j, e.d
			}
		}
		nearest[fi] = nd{d, m.Y[i], i}
		worst = -1
		for _, e := range nearest {
			if e.d > worst {
				worst = e.d
			}
		}
	}
	// Deterministic vote: sort by (distance, index) then majority with
	// low-label tie-break.
	sort.Slice(nearest, func(a, b int) bool {
		if nearest[a].d != nearest[b].d {
			return nearest[a].d < nearest[b].d
		}
		return nearest[a].i < nearest[b].i
	})
	votes := make([]int, m.Classes)
	for _, e := range nearest {
		if e.y >= 0 && e.y < len(votes) {
			votes[e.y]++
		}
	}
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}
