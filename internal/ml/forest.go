package ml

import (
	"math"
	"math/rand"
)

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling. Majority voting softens — but does not remove — the
// threshold sensitivity that makes tree models react to lossy compression
// (paper Fig 6).
type RandomForest struct {
	// Trees are the fitted ensemble members. Exported for serialization.
	Trees []*DecisionTree
	// Classes is the number of distinct labels.
	Classes int
}

// ForestConfig parameterizes forest training.
type ForestConfig struct {
	// Trees is the ensemble size; 0 selects 20.
	Trees int
	// Tree bounds each member's growth. MaxFeatures 0 selects sqrt(dim).
	Tree TreeConfig
	// Seed makes bootstrap sampling deterministic.
	Seed int64
}

// FitForest trains a random forest.
func FitForest(X [][]float64, y []int, cfg ForestConfig) (*RandomForest, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	if cfg.Trees == 0 {
		cfg.Trees = 20
	}
	if cfg.Tree.MaxFeatures == 0 {
		cfg.Tree.MaxFeatures = int(math.Sqrt(float64(len(X[0]))))
		if cfg.Tree.MaxFeatures < 1 {
			cfg.Tree.MaxFeatures = 1
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	f := &RandomForest{Classes: maxLabel(y) + 1}
	n := len(X)
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample with replacement.
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tc := cfg.Tree
		tc.FeatureSeed = rng.Uint64()
		tree, err := FitTree(bx, by, tc)
		if err != nil {
			return nil, err
		}
		// The bootstrap may miss high labels; keep the global class count.
		tree.Classes = f.Classes
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

// Predict implements Classifier by majority vote (ties break to the lower
// label for determinism).
func (f *RandomForest) Predict(x []float64) int {
	votes := make([]int, f.Classes)
	for _, t := range f.Trees {
		p := t.Predict(x)
		if p >= 0 && p < len(votes) {
			votes[p]++
		}
	}
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}
