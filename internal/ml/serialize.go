package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// This file is the model (de)serialization module from paper §IV-D1:
// "AdaEdge incorporates a specialized module for serialization and
// deserialization to manage instances of machine learning models." Models
// are exchanged as self-describing binary blobs so a pre-trained model can
// be shipped to the edge device and loaded for accuracy evaluation.

// modelEnvelope wraps a model with its kind tag for gob round-tripping.
type modelEnvelope struct {
	Kind string
	Tree *DecisionTree
	For  *RandomForest
	Knn  *KNN
	Km   *KMeans
}

// Save serializes a model to w. Supported types: *DecisionTree,
// *RandomForest, *KNN, *KMeans.
func Save(w io.Writer, m Classifier) error {
	env := modelEnvelope{}
	switch v := m.(type) {
	case *DecisionTree:
		env.Kind, env.Tree = "dtree", v
	case *RandomForest:
		env.Kind, env.For = "rforest", v
	case *KNN:
		env.Kind, env.Knn = "knn", v
	case *KMeans:
		env.Kind, env.Km = "kmeans", v
	default:
		return fmt.Errorf("ml: unsupported model type %T", m)
	}
	return gob.NewEncoder(w).Encode(env)
}

// Load deserializes a model previously written by Save.
func Load(r io.Reader) (Classifier, error) {
	var env modelEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: decode model: %w", err)
	}
	switch env.Kind {
	case "dtree":
		if env.Tree == nil {
			return nil, fmt.Errorf("ml: envelope kind %q missing payload", env.Kind)
		}
		return env.Tree, nil
	case "rforest":
		if env.For == nil {
			return nil, fmt.Errorf("ml: envelope kind %q missing payload", env.Kind)
		}
		return env.For, nil
	case "knn":
		if env.Knn == nil {
			return nil, fmt.Errorf("ml: envelope kind %q missing payload", env.Kind)
		}
		return env.Knn, nil
	case "kmeans":
		if env.Km == nil {
			return nil, fmt.Errorf("ml: envelope kind %q missing payload", env.Kind)
		}
		return env.Km, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}

// Marshal serializes a model to a byte slice.
func Marshal(m Classifier) ([]byte, error) {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes a model from a byte slice.
func Unmarshal(data []byte) (Classifier, error) {
	return Load(bytes.NewReader(data))
}
