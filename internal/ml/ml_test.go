package ml

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/datasets"
)

func blobs(n, dim, classes int, noise float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centres := make([][]float64, classes)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for j := range centres[c] {
			centres[c][j] = float64(c*10 + j%3)
		}
	}
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % classes
		row := make([]float64, dim)
		for j := range row {
			row[j] = centres[c][j] + noise*rng.NormFloat64()
		}
		X[i] = row
		y[i] = c
	}
	return X, y
}

func TestTreeLearnsSeparableData(t *testing.T) {
	X, y := blobs(300, 4, 3, 0.5, 1)
	m, err := FitTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := LabelAccuracy(m, X, y); acc < 0.95 {
		t.Fatalf("tree accuracy %.3f on separable blobs, want >= 0.95", acc)
	}
}

func TestTreeGeneralizes(t *testing.T) {
	X, y := blobs(400, 4, 3, 0.5, 2)
	train, trainY := X[:300], y[:300]
	test, testY := X[300:], y[300:]
	m, err := FitTree(train, trainY, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := LabelAccuracy(m, test, testY); acc < 0.9 {
		t.Fatalf("tree test accuracy %.3f, want >= 0.9", acc)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	X, y := blobs(300, 4, 3, 2.0, 3)
	m, err := FitTree(X, y, TreeConfig{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds MaxDepth 3", d)
	}
}

func TestTreeBadInput(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeConfig{}); err != ErrBadTrainingData {
		t.Fatalf("want ErrBadTrainingData, got %v", err)
	}
	if _, err := FitTree([][]float64{{1, 2}, {1}}, []int{0, 1}, TreeConfig{}); err != ErrBadTrainingData {
		t.Fatalf("ragged rows: want ErrBadTrainingData, got %v", err)
	}
	if _, err := FitTree([][]float64{{1}}, []int{0, 1}, TreeConfig{}); err != ErrBadTrainingData {
		t.Fatalf("length mismatch: want ErrBadTrainingData, got %v", err)
	}
}

func TestTreePredictShortVector(t *testing.T) {
	X, y := blobs(100, 4, 2, 0.5, 4)
	m, err := FitTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Must not panic on a vector shorter than the training dim.
	_ = m.Predict([]float64{1})
}

func TestForestLearnsAndBeatsNoise(t *testing.T) {
	X, y := blobs(300, 6, 3, 1.5, 5)
	m, err := FitForest(X, y, ForestConfig{Trees: 15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := LabelAccuracy(m, X, y); acc < 0.9 {
		t.Fatalf("forest accuracy %.3f, want >= 0.9", acc)
	}
	if len(m.Trees) != 15 {
		t.Fatalf("forest has %d trees, want 15", len(m.Trees))
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	X, y := blobs(200, 4, 3, 1.0, 6)
	m1, _ := FitForest(X, y, ForestConfig{Trees: 5, Seed: 9})
	m2, _ := FitForest(X, y, ForestConfig{Trees: 5, Seed: 9})
	for i := range X {
		if m1.Predict(X[i]) != m2.Predict(X[i]) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestKNNLearns(t *testing.T) {
	X, y := blobs(200, 4, 3, 0.8, 7)
	m, err := FitKNN(X, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc := LabelAccuracy(m, X, y); acc < 0.95 {
		t.Fatalf("knn accuracy %.3f, want >= 0.95", acc)
	}
}

func TestKNNCopiesTrainingData(t *testing.T) {
	X, y := blobs(50, 3, 2, 0.5, 8)
	m, err := FitKNN(X, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Predict(X[0])
	X[0][0] = 1e9 // mutate the caller's copy
	if got := m.Predict([]float64{1e9, X[0][1], X[0][2]}); got != before && m.X[0][0] == 1e9 {
		t.Fatal("KNN aliased caller data")
	}
}

func TestKNNKDefaults(t *testing.T) {
	X, y := blobs(10, 2, 2, 0.1, 9)
	m, err := FitKNN(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 5 {
		t.Fatalf("default K = %d, want 5", m.K)
	}
	m, err = FitKNN(X[:3], y[:3], 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 {
		t.Fatalf("K clamped to %d, want 3", m.K)
	}
}

func TestKMeansClusterAgreement(t *testing.T) {
	X, _ := blobs(300, 4, 3, 0.5, 10)
	m, err := FitKMeans(X, KMeansConfig{K: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Points from the same blob should mostly share a cluster.
	agreement := 0
	for i := 0; i+3 < len(X); i += 3 {
		if m.Predict(X[i]) == m.Predict(X[i+3]) {
			agreement++
		}
	}
	if frac := float64(agreement) / float64(len(X)/3-1); frac < 0.9 {
		t.Fatalf("within-blob agreement %.3f, want >= 0.9", frac)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	X, _ := blobs(200, 4, 4, 1.0, 11)
	m1, _ := FitKMeans(X, KMeansConfig{K: 1, Seed: 3})
	m4, _ := FitKMeans(X, KMeansConfig{K: 4, Seed: 3})
	if m4.Inertia(X) >= m1.Inertia(X) {
		t.Fatalf("inertia should drop with more clusters: k1=%g k4=%g", m1.Inertia(X), m4.Inertia(X))
	}
}

func TestKMeansBadInput(t *testing.T) {
	if _, err := FitKMeans(nil, KMeansConfig{}); err != ErrBadTrainingData {
		t.Fatalf("want ErrBadTrainingData, got %v", err)
	}
	if _, err := FitKMeans([][]float64{{1, 2}, {1}}, KMeansConfig{}); err != ErrBadTrainingData {
		t.Fatalf("ragged: want ErrBadTrainingData, got %v", err)
	}
}

func TestMatchAccuracy(t *testing.T) {
	X, y := blobs(200, 4, 2, 0.5, 12)
	m, err := FitTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Identical inputs: perfect agreement.
	if acc := MatchAccuracy(m, X, X); acc != 1 {
		t.Fatalf("self match accuracy = %v, want 1", acc)
	}
	// Heavily corrupted inputs: agreement should drop.
	corrupt := make([][]float64, len(X))
	for i, row := range X {
		c := append([]float64(nil), row...)
		for j := range c {
			c[j] = -c[j] + 100
		}
		corrupt[i] = c
	}
	if acc := MatchAccuracy(m, X, corrupt); acc > 0.9 {
		t.Fatalf("corrupt match accuracy = %v, expected below 0.9", acc)
	}
	if got := MatchAccuracy(m, X, X[:1]); got != 0 {
		t.Fatalf("mismatched lengths should score 0, got %v", got)
	}
}

func TestSmallPerturbationKeepsAgreementHigh(t *testing.T) {
	// The core premise of BUFF-lossy winning on trees: tiny value changes
	// mostly keep predictions, large ones flip them.
	X, y := blobs(300, 4, 3, 1.0, 13)
	m, err := FitForest(X, y, ForestConfig{Trees: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	perturb := func(eps float64) [][]float64 {
		rng := rand.New(rand.NewSource(14))
		out := make([][]float64, len(X))
		for i, row := range X {
			c := append([]float64(nil), row...)
			for j := range c {
				c[j] += eps * (rng.Float64()*2 - 1)
			}
			out[i] = c
		}
		return out
	}
	small := MatchAccuracy(m, X, perturb(0.01))
	large := MatchAccuracy(m, X, perturb(5.0))
	if small < 0.95 {
		t.Fatalf("tiny perturbation agreement %.3f, want >= 0.95", small)
	}
	if large >= small {
		t.Fatalf("agreement should degrade with perturbation: small=%.3f large=%.3f", small, large)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	X, y := blobs(150, 4, 3, 0.8, 15)
	tree, _ := FitTree(X, y, TreeConfig{})
	forest, _ := FitForest(X, y, ForestConfig{Trees: 5, Seed: 15})
	knn, _ := FitKNN(X, y, 3)
	km, _ := FitKMeans(X, KMeansConfig{K: 3, Seed: 15})
	for _, m := range []Classifier{tree, forest, knn, km} {
		blob, err := Marshal(m)
		if err != nil {
			t.Fatalf("%T: marshal: %v", m, err)
		}
		got, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		for i := range X {
			if m.Predict(X[i]) != got.Predict(X[i]) {
				t.Fatalf("%T: prediction changed after round trip", m)
			}
		}
	}
}

func TestSerializationErrors(t *testing.T) {
	type fake struct{ Classifier }
	if err := Save(&bytes.Buffer{}, fake{}); err == nil {
		t.Fatal("expected error for unsupported model type")
	}
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestModelsOnCBF(t *testing.T) {
	// End-to-end sanity on the actual experiment dataset.
	X, y := datasets.CBF(240, datasets.CBFConfig{Seed: 16})
	tree, err := FitTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := LabelAccuracy(tree, X, y); acc < 0.8 {
		t.Fatalf("tree CBF accuracy %.3f, want >= 0.8", acc)
	}
	knn, err := FitKNN(X, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc := LabelAccuracy(knn, X, y); acc < 0.8 {
		t.Fatalf("knn CBF accuracy %.3f, want >= 0.8", acc)
	}
}
