package ml

import (
	"math"
	"sort"
)

// DecisionTree is a CART classification tree with Gini-impurity splits.
// Tree models are the paper's canary workload: they branch on exact
// threshold comparisons, so even small lossy perturbations flip predictions
// (paper Fig 5).
type DecisionTree struct {
	// Nodes is the flattened tree; Nodes[0] is the root. Exported for
	// serialization.
	Nodes []TreeNode
	// Classes is the number of distinct labels seen at fit time.
	Classes int

	cfg TreeConfig
}

// TreeNode is one node of a flattened decision tree.
type TreeNode struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature int
	// Threshold routes x[Feature] <= Threshold to Left, else Right.
	Threshold float64
	// Left and Right are child indexes into Nodes.
	Left, Right int
	// Label is the majority class (valid for leaves).
	Label int
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth; 0 selects a default of 12.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; 0 selects 2.
	MinLeaf int
	// MaxFeatures restricts the number of features examined per split
	// (used by random forests); 0 examines all features.
	MaxFeatures int
	// FeatureSeed drives the per-split feature subsample when MaxFeatures
	// is set.
	FeatureSeed uint64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	return c
}

// FitTree trains a CART tree.
func FitTree(X [][]float64, y []int, cfg TreeConfig) (*DecisionTree, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	t := &DecisionTree{Classes: maxLabel(y) + 1, cfg: cfg.withDefaults()}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.grow(X, y, idx, 0)
	return t, nil
}

// grow recursively builds the subtree over idx and returns its node index.
func (t *DecisionTree) grow(X [][]float64, y []int, idx []int, depth int) int {
	node := TreeNode{Feature: -1, Label: mode(y, idx, t.Classes-1)}
	self := len(t.Nodes)
	t.Nodes = append(t.Nodes, node)
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf || almostPure(y, idx) {
		return self
	}
	feat, thr, ok := t.bestSplit(X, y, idx)
	if !ok {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return self
	}
	l := t.grow(X, y, left, depth+1)
	r := t.grow(X, y, right, depth+1)
	t.Nodes[self].Feature = feat
	t.Nodes[self].Threshold = thr
	t.Nodes[self].Left = l
	t.Nodes[self].Right = r
	return self
}

// bestSplit scans candidate features for the split minimizing weighted Gini
// impurity.
func (t *DecisionTree) bestSplit(X [][]float64, y []int, idx []int) (feat int, thr float64, ok bool) {
	dim := len(X[0])
	features := make([]int, dim)
	for i := range features {
		features[i] = i
	}
	if t.cfg.MaxFeatures > 0 && t.cfg.MaxFeatures < dim {
		// Deterministic xorshift shuffle keyed by the node's sample set.
		state := t.cfg.FeatureSeed ^ uint64(len(idx))*0x9e3779b97f4a7c15
		if state == 0 {
			state = 1
		}
		for i := dim - 1; i > 0; i-- {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			j := int(state % uint64(i+1))
			features[i], features[j] = features[j], features[i]
		}
		features = features[:t.cfg.MaxFeatures]
	}

	parentImp := gini(y, idx, t.Classes-1)
	bestGain := 1e-9
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	for _, f := range features {
		for k, i := range idx {
			vals[k] = fv{v: X[i][f], y: y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		leftCounts := make([]int, t.Classes)
		rightCounts := make([]int, t.Classes)
		for _, e := range vals {
			rightCounts[e.y]++
		}
		nl, nr := 0, len(vals)
		for k := 0; k < len(vals)-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			nl++
			nr--
			if vals[k].v == vals[k+1].v {
				continue
			}
			gl := giniFromCounts(leftCounts, nl)
			gr := giniFromCounts(rightCounts, nr)
			n := float64(len(vals))
			gain := parentImp - (float64(nl)/n)*gl - (float64(nr)/n)*gr
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func giniFromCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	imp := 1.0
	nf := float64(n)
	for _, c := range counts {
		p := float64(c) / nf
		imp -= p * p
	}
	return imp
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	node := 0
	for {
		n := t.Nodes[node]
		if n.Feature < 0 {
			return n.Label
		}
		v := math.Inf(1)
		if n.Feature < len(x) {
			v = x[n.Feature]
		}
		if v <= n.Threshold {
			node = n.Left
		} else {
			node = n.Right
		}
	}
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *DecisionTree) Depth() int {
	var walk func(i, d int) int
	walk = func(i, d int) int {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return d
		}
		l, r := walk(n.Left, d+1), walk(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}
