// Package ml provides the machine-learning substrate for AdaEdge's
// accuracy-targeted compression selection (paper §IV-D1): CART decision
// trees, random forests, k-nearest-neighbour classification and KMeans
// clustering, plus model (de)serialization. Models are trained once on raw
// data and then treated as frozen ground truth: the metric of interest is
// prediction agreement between raw and lossy-decompressed inputs, not
// absolute label accuracy.
package ml

import "errors"

// Classifier assigns a discrete label (class or cluster id) to a feature
// vector. All models in this package implement it.
type Classifier interface {
	Predict(x []float64) int
}

// ErrBadTrainingData is returned when a training set is empty or ragged.
var ErrBadTrainingData = errors.New("ml: empty or inconsistent training data")

// validate checks a feature matrix and label vector for consistency.
func validate(X [][]float64, y []int) error {
	if len(X) == 0 || len(X) != len(y) {
		return ErrBadTrainingData
	}
	dim := len(X[0])
	if dim == 0 {
		return ErrBadTrainingData
	}
	for _, row := range X {
		if len(row) != dim {
			return ErrBadTrainingData
		}
	}
	return nil
}

// MatchAccuracy is the paper's ACC_ml metric: the fraction of rows where
// the model's prediction on the lossy rows matches its prediction on the
// corresponding raw rows (raw predictions are the ground truth).
func MatchAccuracy(m Classifier, raw, lossy [][]float64) float64 {
	if len(raw) == 0 || len(raw) != len(lossy) {
		return 0
	}
	match := 0
	for i := range raw {
		if m.Predict(raw[i]) == m.Predict(lossy[i]) {
			match++
		}
	}
	return float64(match) / float64(len(raw))
}

// LabelAccuracy is plain classification accuracy against true labels; used
// by tests to sanity-check that the models actually learn.
func LabelAccuracy(m Classifier, X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

// euclidean returns the squared Euclidean distance between vectors of equal
// length (extra dimensions in the longer vector are ignored).
func euclideanSq(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// maxLabel returns the largest label in y.
func maxLabel(y []int) int {
	m := 0
	for _, v := range y {
		if v > m {
			m = v
		}
	}
	return m
}

// mode returns the most frequent label among the rows indexed by idx.
func mode(y []int, idx []int, classes int) int {
	counts := make([]int, classes+1)
	for _, i := range idx {
		counts[y[i]]++
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best
}

// gini computes the Gini impurity of the labels indexed by idx.
func gini(y []int, idx []int, classes int) float64 {
	if len(idx) == 0 {
		return 0
	}
	counts := make([]int, classes+1)
	for _, i := range idx {
		counts[y[i]]++
	}
	imp := 1.0
	n := float64(len(idx))
	for _, c := range counts {
		p := float64(c) / n
		imp -= p * p
	}
	return imp
}

// almostPure reports whether the indexed labels are (nearly) a single class.
func almostPure(y []int, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := y[idx[0]]
	for _, i := range idx {
		if y[i] != first {
			return false
		}
	}
	return true
}
