package ml

import (
	"math"
	"math/rand"
)

// KMeans is Lloyd's clustering with kmeans++ initialization. The cluster
// assignment of a row is treated as its "label", matching the paper's use
// of clustering agreement as an ML accuracy target (Figs 7d, 12–14).
type KMeans struct {
	// Centroids are the fitted cluster centres. Exported for serialization.
	Centroids [][]float64
}

// KMeansConfig parameterizes clustering.
type KMeansConfig struct {
	// K is the number of clusters; 0 selects 3.
	K int
	// MaxIter bounds Lloyd iterations; 0 selects 50.
	MaxIter int
	// Seed drives kmeans++ initialization deterministically.
	Seed int64
}

// FitKMeans clusters X.
func FitKMeans(X [][]float64, cfg KMeansConfig) (*KMeans, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, ErrBadTrainingData
	}
	dim := len(X[0])
	for _, row := range X {
		if len(row) != dim {
			return nil, ErrBadTrainingData
		}
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.K > len(X) {
		cfg.K = len(X)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	centroids := kmeansPlusPlus(X, cfg.K, rng)
	assign := make([]int, len(X))
	for iter := 0; iter < cfg.MaxIter; iter++ {
		changed := false
		for i, row := range X {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := euclideanSq(row, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		sums := make([][]float64, cfg.K)
		counts := make([]int, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, row := range X {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the stale centroid for empty clusters
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return &KMeans{Centroids: centroids}, nil
}

// kmeansPlusPlus seeds centroids with D² weighting.
func kmeansPlusPlus(X [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), X[rng.Intn(len(X))]...)
	centroids = append(centroids, first)
	d2 := make([]float64, len(X))
	for len(centroids) < k {
		var total float64
		for i, row := range X {
			best := math.Inf(1)
			for _, cen := range centroids {
				if d := euclideanSq(row, cen); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), X[0]...))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(X) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), X[pick]...))
	}
	return centroids
}

// Predict implements Classifier: the index of the nearest centroid.
func (m *KMeans) Predict(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range m.Centroids {
		if d := euclideanSq(x, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Inertia returns the total within-cluster squared distance of X under the
// fitted centroids, the standard clustering quality measure.
func (m *KMeans) Inertia(X [][]float64) float64 {
	var total float64
	for _, row := range X {
		best := math.Inf(1)
		for _, cen := range m.Centroids {
			if d := euclideanSq(row, cen); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}
