package datasets

import (
	"strconv"
	"strings"
	"testing"
)

func TestLoadUCRTSV(t *testing.T) {
	input := "1\t0.5\t0.6\t0.7\n" +
		"-1\t1.5\t1.6\t1.7\n" +
		"1\t2.5\t2.6\t2.7\n"
	X, y, err := LoadUCRTSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 3 || len(X[0]) != 3 {
		t.Fatalf("shape %dx%d", len(X), len(X[0]))
	}
	// Labels remap to first-appearance order: 1 -> 0, -1 -> 1.
	want := []int{0, 1, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("labels = %v, want %v", y, want)
		}
	}
	if X[1][0] != 1.5 {
		t.Fatalf("X[1][0] = %v", X[1][0])
	}
}

func TestLoadUCRCSVFallback(t *testing.T) {
	X, y, err := LoadUCRTSV(strings.NewReader("2,9.5,8.5\n3,7.5,6.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 2 || y[0] != 0 || y[1] != 1 {
		t.Fatalf("X=%v y=%v", X, y)
	}
}

func TestLoadUCRTSVSkipsBlankLines(t *testing.T) {
	X, _, err := LoadUCRTSV(strings.NewReader("\n1\t2\t3\n\n\n1\t4\t5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 2 {
		t.Fatalf("rows = %d", len(X))
	}
}

func TestLoadUCRTSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"label only":    "1\n",
		"ragged":        "1\t2\t3\n1\t2\n",
		"non-numeric":   "1\tabc\n",
		"missing label": "\t\n",
	}
	for name, input := range cases {
		if _, _, err := LoadUCRTSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadUCRTSVRoundTripWithGenerator(t *testing.T) {
	// Serialize a generated dataset and load it back.
	X, y := UCRLike(12, 8, 3, 4)
	var sb strings.Builder
	for i, row := range X {
		sb.WriteString(strconv.Itoa(y[i]))
		for _, v := range row {
			sb.WriteByte('\t')
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	gotX, gotY, err := LoadUCRTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if gotY[i] != y[i] {
			t.Fatalf("label %d: %d vs %d", i, gotY[i], y[i])
		}
		for j := range X[i] {
			if gotX[i][j] != X[i][j] {
				t.Fatalf("value [%d][%d]: %v vs %v", i, j, gotX[i][j], X[i][j])
			}
		}
	}
}
