package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadUCRTSV parses a dataset in the UCR time-series archive format: one
// series per line, tab- (or comma-) separated, the class label in the
// first column. The synthetic generators in this package stand in for the
// archives during experiments (DESIGN.md §2); this loader lets users run
// the real archives when they have them locally.
//
// Labels are remapped to contiguous 0-based integers in order of first
// appearance (UCR labels are arbitrary integers, sometimes negative).
func LoadUCRTSV(r io.Reader) (X [][]float64, y []int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	labelIDs := map[string]int{}
	width := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := splitTSV(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("datasets: line %d: need a label and at least one value", line)
		}
		if width == -1 {
			width = len(fields) - 1
		} else if len(fields)-1 != width {
			return nil, nil, fmt.Errorf("datasets: line %d: %d values, want %d", line, len(fields)-1, width)
		}
		labelKey := fields[0]
		id, ok := labelIDs[labelKey]
		if !ok {
			id = len(labelIDs)
			labelIDs[labelKey] = id
		}
		row := make([]float64, width)
		for i, f := range fields[1:] {
			v, perr := strconv.ParseFloat(f, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("datasets: line %d col %d: %v", line, i+2, perr)
			}
			row[i] = v
		}
		X = append(X, row)
		y = append(y, id)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("datasets: %v", err)
	}
	if len(X) == 0 {
		return nil, nil, fmt.Errorf("datasets: empty input")
	}
	return X, y, nil
}

// splitTSV splits on tabs, falling back to commas (some archive exports
// use CSV).
func splitTSV(line string) []string {
	if strings.ContainsRune(line, '\t') {
		return strings.Split(line, "\t")
	}
	return strings.Split(line, ",")
}
