package datasets

import (
	"math"
	"math/rand"

	"repro/internal/timeseries"
)

// UCRLike generates a time-series classification dataset in the style of
// the UCR archive: classes are sinusoids of distinct frequency and phase
// with additive noise and random warping of amplitude, quantized at the
// paper's 5-digit UCR precision.
func UCRLike(n, length, classes int, seed int64) (X [][]float64, y []int) {
	if length <= 0 {
		length = 128
	}
	if classes <= 0 {
		classes = 4
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scale := math.Pow10(int(timeseries.PrecisionUCR))
	X = make([][]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		freq := 1 + float64(c)*1.5
		amp := 2 + rng.Float64()
		phase := rng.Float64() * 2 * math.Pi
		row := make([]float64, length)
		for t := range row {
			v := amp*math.Sin(2*math.Pi*freq*float64(t)/float64(length)+phase) + 0.3*rng.NormFloat64()
			row[t] = math.Round(v*scale) / scale
		}
		X[i] = row
		y[i] = c
	}
	return X, y
}

// UCILike generates a tabular classification dataset in the style of the
// UCI repository: classes are Gaussian blobs in feature space, quantized at
// the paper's 6-digit UCI precision.
func UCILike(n, dim, classes int, seed int64) (X [][]float64, y []int) {
	if dim <= 0 {
		dim = 16
	}
	if classes <= 0 {
		classes = 3
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scale := math.Pow10(int(timeseries.PrecisionUCI))
	// Random class centres spread over a hypercube.
	centres := make([][]float64, classes)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for j := range centres[c] {
			centres[c][j] = rng.Float64()*10 - 5
		}
	}
	X = make([][]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		row := make([]float64, dim)
		for j := range row {
			v := centres[c][j] + 0.8*rng.NormFloat64()
			row[j] = math.Round(v*scale) / scale
		}
		X[i] = row
		y[i] = c
	}
	return X, y
}

// ShiftStream reproduces the Fig 15 workload: the first half of the stream
// is high-entropy CBF data, the second half low-entropy data (a small set
// of repeated plateau levels), so the optimal lossless codec changes
// mid-stream.
type ShiftStream struct {
	cbf      *CBFStream
	rng      *rand.Rand
	length   int
	total    int
	produced int
	level    float64
}

// NewShiftStream builds the two-phase stream; totalSeries is the number of
// series after which the stream is exhausted (half per phase).
func NewShiftStream(totalSeries, length int, seed int64) *ShiftStream {
	if length <= 0 {
		length = CBFLength
	}
	if seed == 0 {
		seed = 1
	}
	return &ShiftStream{
		cbf:    NewCBFStream(CBFConfig{Length: length, Seed: seed}),
		rng:    rand.New(rand.NewSource(seed ^ 0x5bf0)),
		length: length,
		total:  totalSeries,
		level:  10,
	}
}

// Phase reports which phase the next series belongs to: 0 (high entropy)
// or 1 (low entropy).
func (s *ShiftStream) Phase() int {
	if s.produced < s.total/2 {
		return 0
	}
	return 1
}

// Done reports whether the stream is exhausted.
func (s *ShiftStream) Done() bool { return s.produced >= s.total }

// Next returns the next series; label is the CBF class in phase 0 and -1
// in phase 1.
func (s *ShiftStream) Next() (series []float64, label int) {
	phase := s.Phase()
	s.produced++
	if phase == 0 {
		return s.cbf.Next()
	}
	// Low-entropy phase: plateaus drawn from 8 quantized levels with rare
	// steps, highly compressible by byte compressors.
	out := make([]float64, s.length)
	for i := range out {
		if s.rng.Intn(48) == 0 {
			s.level = float64(s.rng.Intn(8)) * 1.25
		}
		out[i] = s.level
	}
	return out, -1
}
