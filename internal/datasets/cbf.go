// Package datasets provides the evaluation data substrate. The paper uses
// the CBF simulated dataset (Saito 1994) for all streaming experiments and
// the UCR/UCI archives for the static ML sweeps; this package generates
// CBF exactly per Saito's equations and deterministic UCR-like (time
// series) and UCI-like (tabular) synthetic classification sets with the
// same structure. See DESIGN.md §2 for the substitution rationale.
package datasets

import (
	"math"
	"math/rand"

	"repro/internal/timeseries"
)

// CBF class labels.
const (
	Cylinder = 0
	Bell     = 1
	Funnel   = 2
)

// CBFLength is the canonical CBF series length.
const CBFLength = 128

// CBFConfig parameterizes the generator.
type CBFConfig struct {
	// Length is the series length; 0 selects CBFLength.
	Length int
	// Precision quantizes values to the dataset's decimal precision;
	// 0 selects the paper's 4 digits for CBF.
	Precision int
	// Seed drives generation deterministically.
	Seed int64
}

func (c CBFConfig) withDefaults() CBFConfig {
	if c.Length == 0 {
		c.Length = CBFLength
	}
	if c.Precision == 0 {
		c.Precision = int(timeseries.PrecisionCBF)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CBF generates n labelled Cylinder-Bell-Funnel series following Saito's
// construction: a noisy plateau/ramp of height ≈6 between random onset a
// and offset b, plus unit Gaussian noise, quantized to the configured
// precision.
func CBF(n int, cfg CBFConfig) (X [][]float64, y []int) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	scale := math.Pow10(cfg.Precision)
	X = make([][]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		label := i % 3
		X[i] = cbfSeries(rng, label, cfg.Length, scale)
		y[i] = label
	}
	return X, y
}

func cbfSeries(rng *rand.Rand, label, length int, scale float64) []float64 {
	// a ~ U[16,32), b-a ~ U[32,96) scaled to the series length relative to
	// the canonical 128.
	f := float64(length) / CBFLength
	a := 16*f + rng.Float64()*16*f
	span := 32*f + rng.Float64()*64*f
	b := a + span
	eta := rng.NormFloat64()
	amp := 6 + eta
	out := make([]float64, length)
	for t := 0; t < length; t++ {
		x := float64(t)
		v := rng.NormFloat64() // ε(t)
		if x >= a && x <= b {
			switch label {
			case Cylinder:
				v += amp
			case Bell:
				v += amp * (x - a) / (b - a)
			case Funnel:
				v += amp * (b - x) / (b - a)
			}
		}
		out[t] = math.Round(v*scale) / scale
	}
	return out
}

// CBFStream produces an endless concatenation of CBF series for the
// streaming experiments (paper §V-B: "a dummy client that generates data
// points from the CBF dataset"). Next returns the next series and its
// label.
type CBFStream struct {
	rng   *rand.Rand
	cfg   CBFConfig
	scale float64
	n     int
}

// NewCBFStream builds a deterministic stream.
func NewCBFStream(cfg CBFConfig) *CBFStream {
	cfg = cfg.withDefaults()
	return &CBFStream{
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		scale: math.Pow10(cfg.Precision),
	}
}

// Next returns the next labelled series in the stream.
func (s *CBFStream) Next() (series []float64, label int) {
	label = s.n % 3
	s.n++
	return cbfSeries(s.rng, label, s.cfg.Length, s.scale), label
}
