package datasets

import (
	"math"
	"testing"
)

func TestCBFShape(t *testing.T) {
	X, y := CBF(30, CBFConfig{Seed: 1})
	if len(X) != 30 || len(y) != 30 {
		t.Fatalf("got %d/%d rows", len(X), len(y))
	}
	for i, row := range X {
		if len(row) != CBFLength {
			t.Fatalf("row %d length %d, want %d", i, len(row), CBFLength)
		}
		if y[i] != i%3 {
			t.Fatalf("label %d = %d, want %d", i, y[i], i%3)
		}
	}
}

func TestCBFQuantizedToPrecision(t *testing.T) {
	X, _ := CBF(9, CBFConfig{Seed: 2})
	scale := math.Pow10(4)
	for _, row := range X {
		for _, v := range row {
			if math.Round(v*scale)/scale != v {
				t.Fatalf("value %v not quantized to 4 digits", v)
			}
		}
	}
}

func TestCBFDeterministic(t *testing.T) {
	a, _ := CBF(6, CBFConfig{Seed: 7})
	b, _ := CBF(6, CBFConfig{Seed: 7})
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c, _ := CBF(6, CBFConfig{Seed: 8})
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestCBFClassShapes(t *testing.T) {
	// The class structure must be learnable: the mean of the active region
	// differs by construction. Cylinder plateaus high; bell ramps up;
	// funnel ramps down. Check first-half vs second-half asymmetry.
	X, y := CBF(300, CBFConfig{Seed: 3})
	var bellAsym, funnelAsym float64
	var bells, funnels int
	for i, row := range X {
		half := len(row) / 2
		var a, b float64
		for _, v := range row[:half] {
			a += v
		}
		for _, v := range row[half:] {
			b += v
		}
		switch y[i] {
		case Bell:
			bellAsym += b - a
			bells++
		case Funnel:
			funnelAsym += b - a
			funnels++
		}
	}
	if bellAsym/float64(bells) <= 0 {
		t.Fatal("bell series should weigh the second half")
	}
	if funnelAsym/float64(funnels) >= 0 {
		t.Fatal("funnel series should weigh the first half")
	}
}

func TestCBFStreamCycle(t *testing.T) {
	s := NewCBFStream(CBFConfig{Seed: 4})
	for i := 0; i < 9; i++ {
		series, label := s.Next()
		if label != i%3 {
			t.Fatalf("stream label %d = %d", i, label)
		}
		if len(series) != CBFLength {
			t.Fatalf("series length %d", len(series))
		}
	}
}

func TestUCRLike(t *testing.T) {
	X, y := UCRLike(40, 64, 4, 5)
	if len(X) != 40 {
		t.Fatalf("rows = %d", len(X))
	}
	for i, row := range X {
		if len(row) != 64 {
			t.Fatalf("row %d length %d", i, len(row))
		}
		if y[i] != i%4 {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestUCILike(t *testing.T) {
	X, y := UCILike(60, 8, 3, 6)
	if len(X) != 60 || len(X[0]) != 8 {
		t.Fatalf("shape %dx%d", len(X), len(X[0]))
	}
	// Blobs must be separated: within-class distance < between-class.
	within := dist(X[0], X[3])  // both class 0
	between := dist(X[0], X[1]) // class 0 vs 1
	if within >= between {
		t.Fatalf("UCI blobs not separated: within %g between %g", within, between)
	}
	_ = y
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestShiftStreamPhases(t *testing.T) {
	s := NewShiftStream(10, 128, 7)
	distinct := func(series []float64) int {
		set := map[float64]bool{}
		for _, v := range series {
			set[v] = true
		}
		return len(set)
	}
	var hi, lo int
	for !s.Done() {
		phase := s.Phase()
		series, label := s.Next()
		if phase == 0 {
			hi += distinct(series)
			if label < 0 {
				t.Fatal("phase 0 should carry CBF labels")
			}
		} else {
			lo += distinct(series)
			if label != -1 {
				t.Fatal("phase 1 label should be -1")
			}
		}
	}
	if hi/5 <= lo/5*4 {
		t.Fatalf("high-entropy phase should have far more distinct values: hi=%d lo=%d", hi/5, lo/5)
	}
}

func TestShiftStreamDone(t *testing.T) {
	s := NewShiftStream(4, 32, 1)
	for i := 0; i < 4; i++ {
		if s.Done() {
			t.Fatalf("done too early at %d", i)
		}
		s.Next()
	}
	if !s.Done() {
		t.Fatal("stream should be exhausted")
	}
}
