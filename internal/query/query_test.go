package query

import (
	"math"
	"testing"
	"testing/quick"
)

func TestApply(t *testing.T) {
	vals := []float64{1, 2, 3, 4, -5}
	cases := []struct {
		agg  Agg
		want float64
	}{
		{Sum, 5},
		{Avg, 1},
		{Min, -5},
		{Max, 4},
	}
	for _, c := range cases {
		got, err := Apply(c.agg, vals)
		if err != nil {
			t.Fatalf("%s: %v", c.agg, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.agg, got, c.want)
		}
	}
}

func TestApplyEmpty(t *testing.T) {
	for _, a := range []Agg{Sum, Avg, Min, Max} {
		if _, err := Apply(a, nil); err != ErrEmpty {
			t.Errorf("%s: want ErrEmpty, got %v", a, err)
		}
	}
}

func TestApplyUnknown(t *testing.T) {
	if _, err := Apply(Agg(99), []float64{1}); err == nil {
		t.Fatal("expected error for unknown aggregation")
	}
	if Agg(99).String() != "unknown" {
		t.Fatal("unknown Agg should stringify to 'unknown'")
	}
}

func TestAccuracy(t *testing.T) {
	cases := []struct {
		trueVal, lossy, want float64
	}{
		{100, 100, 1},
		{100, 90, 0.9},
		{100, 110, 0.9},
		{100, 300, 0}, // clamped at 0
		{-100, -90, 0.9},
		{0, 0, 1},
		{0, 1, 0},
	}
	for _, c := range cases {
		if got := Accuracy(c.trueVal, c.lossy); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Accuracy(%v,%v) = %v, want %v", c.trueVal, c.lossy, got, c.want)
		}
	}
}

func TestLossComplementsAccuracy(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return math.Abs(Loss(a, b)+Accuracy(a, b)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluate(t *testing.T) {
	raw := []float64{10, 20, 30, 40}
	lossy := []float64{11, 19, 31, 39} // same sum
	acc, err := Evaluate(Sum, raw, lossy)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("sum accuracy = %v, want 1", acc)
	}
	acc, err = Evaluate(Max, raw, lossy)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Abs(40.0-39.0)/40
	if math.Abs(acc-want) > 1e-12 {
		t.Fatalf("max accuracy = %v, want %v", acc, want)
	}
	if _, err := Evaluate(Sum, nil, lossy); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestAccuracyBounds(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		acc := Accuracy(a, b)
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggString(t *testing.T) {
	want := map[Agg]string{Sum: "sum", Avg: "avg", Min: "min", Max: "max"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}
