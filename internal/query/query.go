// Package query implements the aggregation workload AdaEdge optimizes for
// (paper §IV-D2): Min/Max/Sum/Avg operators over raw or decompressed
// segments and the relative-loss accuracy metric Acc_agg used for
// approximate query processing evaluation.
package query

import (
	"errors"
	"math"
)

// Agg identifies an aggregation operator.
type Agg int

// Supported aggregation operators.
const (
	Sum Agg = iota
	Avg
	Min
	Max
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "unknown"
	}
}

// ErrEmpty is returned when aggregating zero values.
var ErrEmpty = errors.New("query: empty input")

// Apply evaluates the operator over values.
func Apply(a Agg, values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	switch a {
	case Sum:
		var s float64
		for _, v := range values {
			s += v
		}
		return s, nil
	case Avg:
		var s float64
		for _, v := range values {
			s += v
		}
		return s / float64(len(values)), nil
	case Min:
		m := math.Inf(1)
		for _, v := range values {
			if v < m {
				m = v
			}
		}
		return m, nil
	case Max:
		m := math.Inf(-1)
		for _, v := range values {
			if v > m {
				m = v
			}
		}
		return m, nil
	default:
		return 0, errors.New("query: unknown aggregation")
	}
}

// Accuracy is the paper's Acc_agg = 1 - |Vtrue - Vlossy| / |Vtrue|. When
// the true value is zero the metric degenerates; we follow the standard
// approximate-query convention of returning 1 on exact match and 0
// otherwise.
func Accuracy(trueVal, lossyVal float64) float64 {
	if trueVal == 0 {
		if lossyVal == 0 {
			return 1
		}
		return 0
	}
	acc := 1 - math.Abs(trueVal-lossyVal)/math.Abs(trueVal)
	if acc < 0 {
		return 0
	}
	return acc
}

// Loss is 1 - Accuracy, the quantity plotted in the paper's Figs 8–9.
func Loss(trueVal, lossyVal float64) float64 { return 1 - Accuracy(trueVal, lossyVal) }

// Evaluate compares the operator on raw and lossy values and returns the
// relative accuracy.
func Evaluate(a Agg, raw, lossy []float64) (float64, error) {
	tv, err := Apply(a, raw)
	if err != nil {
		return 0, err
	}
	lv, err := Apply(a, lossy)
	if err != nil {
		return 0, err
	}
	return Accuracy(tv, lv), nil
}
