package transport

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/sim"
)

// chaosRun pushes frames through a ResilientUplink whose dialer and
// connections are faulted by a sim.FaultPlan, against a live Collector.
// It returns the delivery trace (every dial/send/ack/backoff event, in
// pump order) and what the sink received.
//
// The trace deliberately excludes BadConns-style collector internals and
// fail-event error text tied to OS-level close/reset races; everything it
// does include is a pure function of (seed, fault schedule, traffic).
func chaosRun(t *testing.T, seed int64, frames []Frame) (trace []string, payloads map[uint64][]byte, counts map[uint64]int) {
	t.Helper()
	reg := compress.DefaultRegistry(4)
	payloads = map[uint64][]byte{}
	counts = map[uint64]int{}
	var sinkMu sync.Mutex
	col := NewCollector(reg, func(f Frame, _ []float64) {
		sinkMu.Lock()
		payloads[f.ID] = append([]byte(nil), f.Enc.Data...)
		counts[f.ID]++
		sinkMu.Unlock()
	})
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// 0.30 virtual seconds up, 0.15 down, repeating; the byte meter and
	// per-dial cost place outages mid-frame and mid-redial.
	link := sim.NewLink(
		sim.LinkPhase{Seconds: 0.30, Bandwidth: sim.Net4G},
		sim.LinkPhase{Seconds: 0.15, Bandwidth: 0},
	)
	plan := sim.NewFaultPlan(link, 20000, 0.02)
	plan.StallAt(0.5)
	plan.ResetAt(1.0)

	var evMu sync.Mutex
	cfg := ResilientConfig{
		Addr:         addr.String(),
		DeviceID:     42,
		Seed:         seed,
		BackoffBase:  200 * time.Microsecond,
		BackoffMax:   2 * time.Millisecond,
		WriteTimeout: 5 * time.Second,
		AckTimeout:   5 * time.Second,
		Dialer: func(a string, timeout time.Duration) (net.Conn, error) {
			return plan.Dial(func() (net.Conn, error) {
				return net.DialTimeout("tcp", a, timeout)
			})
		},
		OnEvent: func(e Event) {
			evMu.Lock()
			trace = append(trace, fmt.Sprintf("%s id=%d wait=%s", e.Kind, e.ID, e.Wait))
			evMu.Unlock()
		},
	}
	up, err := DialResilient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := up.Send(f); err != nil {
			t.Fatalf("send %d: %v", f.ID, err)
		}
	}
	if err := up.WaitDrain(30 * time.Second); err != nil {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("drain: %v (pending %d, vt %.3f)\n%s", err, up.Pending(), plan.Now(), buf[:n])
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	if resets, stalls := plan.Injected(); resets == 0 || stalls == 0 {
		t.Fatalf("chaos run injected no faults (resets=%d stalls=%d) — schedule too tame", resets, stalls)
	}
	return trace, payloads, counts
}

// TestChaosExactlyOnceDeterministic is the tentpole acceptance test:
// under deterministic link outages, scripted stalls/resets and torn
// frames, every spooled segment reaches the collector sink exactly once
// with a byte-identical payload, and the same seed reproduces the same
// retry/ACK trace across two executions.
func TestChaosExactlyOnceDeterministic(t *testing.T) {
	frames, _ := sampleFrames(t, 60)

	trace1, payloads1, counts1 := chaosRun(t, 7, frames)
	for _, f := range frames {
		if counts1[f.ID] != 1 {
			t.Fatalf("frame %d delivered %d times, want exactly once", f.ID, counts1[f.ID])
		}
		if !bytes.Equal(payloads1[f.ID], f.Enc.Data) {
			t.Fatalf("frame %d payload corrupted in transit", f.ID)
		}
	}

	trace2, _, counts2 := chaosRun(t, 7, frames)
	for _, f := range frames {
		if counts2[f.ID] != 1 {
			t.Fatalf("rerun: frame %d delivered %d times", f.ID, counts2[f.ID])
		}
	}
	if len(trace1) != len(trace2) {
		t.Fatalf("trace lengths differ: %d vs %d\nrun1 tail: %v\nrun2 tail: %v",
			len(trace1), len(trace2), tail(trace1, 5), tail(trace2, 5))
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("traces diverge at event %d:\nrun1: %s\nrun2: %s", i, trace1[i], trace2[i])
		}
	}
}

func tail(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
