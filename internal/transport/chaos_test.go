package transport

import (
	"bytes"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/obs"
	"repro/internal/sim"
)

// chaosOutcome is everything one chaos run exposes for assertions: the
// uplink's obs event stream (pump order), the collector's obs observer,
// the collector itself, and what the sink received.
type chaosOutcome struct {
	events   []obs.Event
	upObs    *obs.Observer
	colObs   *obs.Observer
	col      *Collector
	payloads map[uint64][]byte
	counts   map[uint64]int
}

// chaosRun pushes frames through a ResilientUplink whose dialer and
// connections are faulted by a sim.FaultPlan, against a live Collector.
// Both sides carry their own obs.Observer: the uplink's ring holds the
// delivery trace (single pump goroutine → deterministic order for a
// fixed seed and fault schedule), the collector's holds per-frame
// deliver/redeliver events from its handler goroutines (only totals are
// deterministic there).
//
// The uplink trace deliberately excludes fail-event error text tied to
// OS-level close/reset races (see normalizeChaosEvents); everything else
// is a pure function of (seed, fault schedule, traffic).
func chaosRun(t *testing.T, seed int64, frames []Frame) chaosOutcome {
	t.Helper()
	reg := compress.DefaultRegistry(4)
	out := chaosOutcome{
		upObs:    obs.New(1 << 16),
		colObs:   obs.New(1 << 16),
		payloads: map[uint64][]byte{},
		counts:   map[uint64]int{},
	}
	var sinkMu sync.Mutex
	out.col = NewCollector(reg, func(f Frame, _ []float64) {
		sinkMu.Lock()
		out.payloads[f.ID] = append([]byte(nil), f.Enc.Data...)
		out.counts[f.ID]++
		sinkMu.Unlock()
	}).Instrument(out.colObs)
	addr, err := out.col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer out.col.Close()

	// 0.30 virtual seconds up, 0.15 down, repeating; the byte meter and
	// per-dial cost place outages mid-frame and mid-redial.
	link := sim.NewLink(
		sim.LinkPhase{Seconds: 0.30, Bandwidth: sim.Net4G},
		sim.LinkPhase{Seconds: 0.15, Bandwidth: 0},
	)
	plan := sim.NewFaultPlan(link, 20000, 0.02)
	plan.StallAt(0.5)
	plan.ResetAt(1.0)

	cfg := ResilientConfig{
		Addr:         addr.String(),
		DeviceID:     42,
		Seed:         seed,
		BackoffBase:  200 * time.Microsecond,
		BackoffMax:   2 * time.Millisecond,
		WriteTimeout: 5 * time.Second,
		AckTimeout:   5 * time.Second,
		Dialer: func(a string, timeout time.Duration) (net.Conn, error) {
			return plan.Dial(func() (net.Conn, error) {
				return net.DialTimeout("tcp", a, timeout)
			})
		},
		Obs: out.upObs,
	}
	up, err := DialResilient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := up.Send(f); err != nil {
			t.Fatalf("send %d: %v", f.ID, err)
		}
	}
	if err := up.WaitDrain(30 * time.Second); err != nil {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("drain: %v (pending %d, vt %.3f)\n%s", err, up.Pending(), plan.Now(), buf[:n])
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	if resets, stalls := plan.Injected(); resets == 0 || stalls == 0 {
		t.Fatalf("chaos run injected no faults (resets=%d stalls=%d) — schedule too tame", resets, stalls)
	}
	if d := out.upObs.Ring().Dropped(); d != 0 {
		t.Fatalf("uplink trace ring dropped %d events — raise the test ring capacity", d)
	}
	out.events = out.upObs.Ring().Events()
	return out
}

// normalizeChaosEvents strips the fields a deterministic comparison must
// ignore: fail-event error strings depend on OS-level close/reset timing
// (ECONNRESET vs EPIPE vs EOF). Kind, ID, backoff delay (Value, from the
// seeded jitter) and ring sequence all stay.
func normalizeChaosEvents(events []obs.Event) []obs.Event {
	out := make([]obs.Event, len(events))
	copy(out, events)
	for i := range out {
		out[i].Err = ""
	}
	return out
}

// counter reads one named counter from an observer's snapshot.
func counter(t *testing.T, o *obs.Observer, name string) int64 {
	t.Helper()
	return o.Registry().Snapshot().Counters[name]
}

// TestChaosExactlyOnceDeterministic is the tentpole acceptance test:
// under deterministic link outages, scripted stalls/resets and torn
// frames, every spooled segment reaches the collector sink exactly once
// with a byte-identical payload, the obs substrate's redial/redelivery
// counters agree with the collector's own accounting, and the same seed
// reproduces the same uplink event sequence across two executions.
func TestChaosExactlyOnceDeterministic(t *testing.T) {
	frames, _ := sampleFrames(t, 60)

	run1 := chaosRun(t, 7, frames)
	for _, f := range frames {
		if run1.counts[f.ID] != 1 {
			t.Fatalf("frame %d delivered %d times, want exactly once", f.ID, run1.counts[f.ID])
		}
		if !bytes.Equal(run1.payloads[f.ID], f.Enc.Data) {
			t.Fatalf("frame %d payload corrupted in transit", f.ID)
		}
	}

	// The fault schedule forces redials and retransmissions; the obs
	// counters must show them and agree with the collector's accounting.
	if dials := counter(t, run1.upObs, "transport.uplink.dials"); dials < 2 {
		t.Fatalf("uplink dials = %d, want at least one redial", dials)
	}
	if sends := counter(t, run1.upObs, "transport.uplink.sends"); sends < int64(len(frames)) {
		t.Fatalf("uplink sends = %d, want >= %d", sends, len(frames))
	}
	delivered := counter(t, run1.colObs, "transport.collector.frames")
	if delivered != int64(len(frames)) {
		t.Fatalf("collector frames counter = %d, want %d", delivered, len(frames))
	}
	dups := counter(t, run1.colObs, "transport.collector.duplicates")
	if dups != int64(run1.col.Duplicates()) {
		t.Fatalf("collector duplicates counter = %d, Duplicates() = %d", dups, run1.col.Duplicates())
	}
	// Every deliver/redeliver trace event must be in the collector ring.
	colEvents := run1.colObs.Ring().Events()
	if got := int64(len(colEvents)); got != delivered+dups {
		t.Fatalf("collector ring has %d events, want %d deliveries + %d redeliveries", got, delivered, dups)
	}
	for _, ev := range colEvents {
		if ev.Source != "transport.collector" || (ev.Kind != "deliver" && ev.Kind != "redeliver") {
			t.Fatalf("unexpected collector event %+v", ev)
		}
		if uint64(ev.Value) != 42 {
			t.Fatalf("collector event for device %v, want 42", ev.Value)
		}
	}

	run2 := chaosRun(t, 7, frames)
	for _, f := range frames {
		if run2.counts[f.ID] != 1 {
			t.Fatalf("rerun: frame %d delivered %d times", f.ID, run2.counts[f.ID])
		}
	}
	ev1, ev2 := normalizeChaosEvents(run1.events), normalizeChaosEvents(run2.events)
	if len(ev1) != len(ev2) {
		t.Fatalf("uplink event streams differ in length: %d vs %d\nrun1 tail: %+v\nrun2 tail: %+v",
			len(ev1), len(ev2), tailEvents(ev1, 5), tailEvents(ev2, 5))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("uplink event streams diverge at %d:\nrun1: %+v\nrun2: %+v", i, ev1[i], ev2[i])
		}
	}
}

func tailEvents(s []obs.Event, n int) []obs.Event {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
