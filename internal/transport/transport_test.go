package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/datasets"
)

func sampleFrames(t *testing.T, n int) ([]Frame, [][]float64) {
	t.Helper()
	reg := compress.DefaultRegistry(4)
	X, y := datasets.CBF(n, datasets.CBFConfig{Seed: 5})
	names := reg.Names()
	frames := make([]Frame, n)
	for i, row := range X {
		codec, _ := reg.Lookup(names[i%len(names)])
		var enc compress.Encoded
		var err error
		if lc, ok := codec.(compress.LossyCodec); ok {
			enc, err = lc.CompressRatio(row, 0.3)
			if err != nil {
				enc, err = codec.Compress(row)
			}
		} else {
			enc, err = codec.Compress(row)
		}
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		frames[i] = Frame{ID: uint64(i), Label: y[i], Enc: enc}
	}
	return frames, X
}

func TestFrameRoundTrip(t *testing.T) {
	frames, _ := sampleFrames(t, 17) // one per codec
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, f := range frames {
		if err := w.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != want.ID || got.Label != want.Label || got.Enc.Codec != want.Enc.Codec || got.Enc.N != want.Enc.N {
			t.Fatalf("frame %d metadata: %+v vs %+v", i, got, want)
		}
		if !bytes.Equal(got.Enc.Data, want.Enc.Data) {
			t.Fatalf("frame %d payload differs", i)
		}
	}
	if _, err := r.Recv(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestFrameNegativeLabel(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	f := Frame{ID: 3, Label: -1, Enc: compress.Encoded{Codec: "paa", Data: []byte{1}, N: 1}}
	if err := w.Send(f); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := NewReader(&buf).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != -1 {
		t.Fatalf("label = %d", got.Label)
	}
}

func TestFrameRejectsBadInput(t *testing.T) {
	cases := [][]byte{
		{'X', 'X', 'X', 'X'},
		{'A', 'E', 'S', '1'},            // truncated
		append([]byte("AES1"), 1, 2, 0), // zero-length codec name
	}
	for i, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)).Recv(); err == nil || err == io.EOF {
			t.Errorf("case %d: bad frame accepted (%v)", i, err)
		}
	}
	// Empty codec name rejected at send time.
	if err := NewWriter(io.Discard).Send(Frame{}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
}

func TestFrameTruncatedMidPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Send(Frame{ID: 1, Enc: compress.Encoded{Codec: "paa", Data: make([]byte, 100), N: 10}})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-10]
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Recv(); err == nil || err == io.EOF {
		t.Fatalf("truncated payload accepted: %v", err)
	}
}

// rawFrameWithN builds frame bytes whose point-count uvarint the Writer
// would refuse to produce, so the Reader's own bound is what gets tested.
func rawFrameWithN(n uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString("AES1")
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		k := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:k])
	}
	put(7)                // id
	put(zigzag(int64(1))) // label
	put(3)
	buf.WriteString("paa")
	put(n) // point count under test
	put(0) // empty payload
	return buf.Bytes()
}

// TestRecvRejectsHostilePointCount is the regression for the unvalidated
// wire-supplied N: a count that cannot fit the decoder's arithmetic must
// be rejected as a bad frame, not stored into Encoded.N.
func TestRecvRejectsHostilePointCount(t *testing.T) {
	for _, n := range []uint64{math.MaxUint64, 1 << 40, maxFramePoints + 1} {
		_, err := NewReader(bytes.NewReader(rawFrameWithN(n))).Recv()
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("N=%d: want ErrBadFrame, got %v", n, err)
		}
	}
	// The bound itself is still a legal frame.
	f, err := NewReader(bytes.NewReader(rawFrameWithN(maxFramePoints))).Recv()
	if err != nil {
		t.Fatalf("N at bound rejected: %v", err)
	}
	if f.Enc.N != maxFramePoints {
		t.Fatalf("N = %d, want %d", f.Enc.N, maxFramePoints)
	}
}

func TestSendRejectsBadPointCount(t *testing.T) {
	w := NewWriter(io.Discard)
	for _, n := range []int{-1, maxFramePoints + 1} {
		err := w.Send(Frame{Enc: compress.Encoded{Codec: "paa", N: n}})
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("N=%d: want ErrBadFrame, got %v", n, err)
		}
	}
}

func TestAckRoundTripAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeAck(&buf, 42); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	next, err := readAck(bufio.NewReader(bytes.NewReader(full)))
	if err != nil || next != 42 {
		t.Fatalf("round trip: next=%d err=%v", next, err)
	}
	// Every mid-ACK truncation is a bad frame, never a silent zero.
	for i := 1; i < len(full); i++ {
		if _, err := readAck(bufio.NewReader(bytes.NewReader(full[:i]))); !errors.Is(err, ErrBadFrame) {
			t.Errorf("truncated at %d: want ErrBadFrame, got %v", i, err)
		}
	}
	// A clean end of stream is io.EOF, and a foreign magic is a bad frame.
	if _, err := readAck(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
	if _, err := readAck(bufio.NewReader(bytes.NewReader([]byte("AES1\x00")))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("foreign magic: want ErrBadFrame, got %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, 99); err != nil {
		t.Fatal(err)
	}
	h, err := readHello(bufio.NewReader(&buf))
	if err != nil || h.deviceID != 99 || h.version != helloVersion || h.ackEvery != 0 {
		t.Fatalf("v1 round trip: %+v err=%v", h, err)
	}
	buf.Reset()
	if err := writeHelloV2(&buf, 7, 32); err != nil {
		t.Fatal(err)
	}
	h, err = readHello(bufio.NewReader(&buf))
	if err != nil || h.deviceID != 7 || h.version != helloVersion2 || h.ackEvery != 32 {
		t.Fatalf("v2 round trip: %+v err=%v", h, err)
	}
	// Unknown protocol versions are rejected up front.
	bad := []byte{'A', 'E', 'H', '1', 3, 99}
	if _, err := readHello(bufio.NewReader(bytes.NewReader(bad))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("version 3: want ErrBadFrame, got %v", err)
	}
	// A hello torn mid-version reports the read failure, not a bogus
	// "version 0" (the readHello error-conflation regression).
	torn := []byte{'A', 'E', 'H', '1'}
	_, err = readHello(bufio.NewReader(bytes.NewReader(torn)))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("torn hello: want ErrBadFrame, got %v", err)
	}
	if !strings.Contains(err.Error(), "reading hello version") || strings.Contains(err.Error(), "version 0") {
		t.Fatalf("torn hello error conflates read failure with version mismatch: %v", err)
	}
	// Torn mid-deviceID and mid-ackEvery are likewise diagnosable reads.
	if _, err := readHello(bufio.NewReader(bytes.NewReader([]byte{'A', 'E', 'H', '1', 1}))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("torn device id: want ErrBadFrame, got %v", err)
	}
	if _, err := readHello(bufio.NewReader(bytes.NewReader([]byte{'A', 'E', 'H', '1', 2, 7}))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("torn ack interval: want ErrBadFrame, got %v", err)
	}
}

// TestCollectorServeGuards is the regression for Serve silently
// overwriting the live listener: a second Serve and a Serve after Close
// must fail loudly.
func TestCollectorServeGuards(t *testing.T) {
	col := NewCollector(nil, nil)
	if _, err := col.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Serve("127.0.0.1:0"); !errors.Is(err, ErrCollectorServing) {
		t.Fatalf("second Serve: want ErrCollectorServing, got %v", err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Serve("127.0.0.1:0"); !errors.Is(err, ErrCollectorClosed) {
		t.Fatalf("Serve after Close: want ErrCollectorClosed, got %v", err)
	}
}

func TestDialTimeoutRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	if _, err := DialTimeout(addr, 500*time.Millisecond); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
}

func TestUplinkWriteTimeout(t *testing.T) {
	col := NewCollector(compress.DefaultRegistry(4), nil)
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	up, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	up.SetWriteTimeout(2 * time.Second)
	frames, _ := sampleFrames(t, 3)
	for _, f := range frames {
		if err := up.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.Frames() < len(frames) {
		if time.Now().After(deadline) {
			t.Fatalf("frames = %d", col.Frames())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	reg := compress.DefaultRegistry(4)
	var mu sync.Mutex
	received := map[uint64][]float64{}
	col := NewCollector(reg, func(f Frame, values []float64) {
		mu.Lock()
		// values is only valid during the callback (pooled decode
		// buffers) — retaining requires a copy.
		received[f.ID] = append([]float64(nil), values...)
		mu.Unlock()
	})
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	frames, raws := sampleFrames(t, 12)
	up, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := up.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if col.Frames() >= len(frames) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d frames", col.Frames(), len(frames))
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, f := range frames {
		vals, ok := received[f.ID]
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		if len(vals) != len(raws[i]) {
			t.Fatalf("frame %d decoded to %d values", i, len(vals))
		}
	}
}

func TestCollectorSurvivesGarbageConnection(t *testing.T) {
	col := NewCollector(compress.DefaultRegistry(4), nil)
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// A garbage connection must be dropped without affecting the next one.
	up1, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	up1.conn.Write([]byte("not a frame at all"))
	up1.conn.Close()

	frames, _ := sampleFrames(t, 2)
	up2, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := up2.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	up2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for col.Frames() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("frames = %d after garbage connection", col.Frames())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if col.BadConns() == 0 {
		t.Fatal("garbage connection not counted")
	}
}

func TestCollectorCloseIdempotent(t *testing.T) {
	col := NewCollector(nil, nil)
	if _, err := col.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
}
