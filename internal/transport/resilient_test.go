package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/store"
)

func smallFrame(id uint64) Frame {
	return Frame{ID: id, Label: 1, Enc: compress.Encoded{Codec: "paa", Data: []byte{byte(id), 1, 2, 3}, N: 4}}
}

// TestResilientDelivery: frames spooled through the resilient uplink reach
// the collector sink exactly once, byte-identical, and the cumulative ACK
// watermark covers them all.
func TestResilientDelivery(t *testing.T) {
	reg := compress.DefaultRegistry(4)
	var mu sync.Mutex
	payloads := map[uint64][]byte{}
	counts := map[uint64]int{}
	col := NewCollector(reg, func(f Frame, _ []float64) {
		mu.Lock()
		payloads[f.ID] = append([]byte(nil), f.Enc.Data...)
		counts[f.ID]++
		mu.Unlock()
	})
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up, err := DialResilient(ResilientConfig{Addr: addr.String(), DeviceID: 7})
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := sampleFrames(t, 10)
	for _, f := range frames {
		if err := up.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.WaitDrain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	if got := up.Acked(); got != uint64(len(frames)) {
		t.Fatalf("uplink watermark = %d, want %d", got, len(frames))
	}
	if next, ok := col.Acked(7); !ok || next != uint64(len(frames)) {
		t.Fatalf("collector watermark = %d ok=%v", next, ok)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, f := range frames {
		if counts[f.ID] != 1 {
			t.Fatalf("frame %d delivered %d times", f.ID, counts[f.ID])
		}
		if !bytes.Equal(payloads[f.ID], f.Enc.Data) {
			t.Fatalf("frame %d payload differs", f.ID)
		}
	}
	if up.Send(smallFrame(99)) != ErrUplinkClosed {
		t.Fatal("Send after Close must fail with ErrUplinkClosed")
	}
}

// TestResilientRedial: dial failures back off and retry until the
// collector is reachable; nothing is lost in between.
func TestResilientRedial(t *testing.T) {
	col := NewCollector(compress.DefaultRegistry(4), nil)
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	var dialMu sync.Mutex
	failsLeft := 3
	cfg := ResilientConfig{
		Addr:        addr.String(),
		DeviceID:    1,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Dialer: func(a string, timeout time.Duration) (net.Conn, error) {
			dialMu.Lock()
			fail := failsLeft > 0
			if fail {
				failsLeft--
			}
			dialMu.Unlock()
			if fail {
				return nil, errors.New("injected dial failure")
			}
			return net.DialTimeout("tcp", a, timeout)
		},
	}
	up, err := DialResilient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		if err := up.Send(smallFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.WaitDrain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := up.Stats()
	_ = up.Close()
	if st.DialFailures != 3 {
		t.Fatalf("dial failures = %d, want 3", st.DialFailures)
	}
	if st.Dials < 4 {
		t.Fatalf("dials = %d, want >= 4", st.Dials)
	}
	if st.Acked != 5 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestResilientSpoolPressure: an unreachable collector fills the bounded
// spool, fires the high-water pressure callback (the Degrade hook), and
// sheds with ErrSpoolFull once full.
func TestResilientSpoolPressure(t *testing.T) {
	var mu sync.Mutex
	var events []bool
	cfg := ResilientConfig{
		Addr:          "127.0.0.1:1",
		DeviceID:      2,
		SpoolSegments: 4,
		HighWater:     0.5,
		BackoffBase:   time.Millisecond,
		BackoffMax:    2 * time.Millisecond,
		Dialer: func(string, time.Duration) (net.Conn, error) {
			return nil, errors.New("link permanently down")
		},
		OnPressure: func(over bool) {
			mu.Lock()
			events = append(events, over)
			mu.Unlock()
		},
	}
	up, err := DialResilient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	for i := uint64(0); i < 4; i++ {
		if err := up.Send(smallFrame(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := up.Send(smallFrame(4)); !errors.Is(err, store.ErrSpoolFull) {
		t.Fatalf("want ErrSpoolFull, got %v", err)
	}
	st := up.Stats()
	if st.Pending != 4 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 || !events[0] {
		t.Fatalf("pressure events = %v, want one over=true", events)
	}
}

// TestBackoffDeterministic: the jitter stream is a pure function of the
// seed, and every delay stays inside [ceil/2, ceil].
func TestBackoffDeterministic(t *testing.T) {
	base, max := time.Millisecond, 100*time.Millisecond
	b1 := newBackoff(base, max, 42)
	b2 := newBackoff(base, max, 42)
	b3 := newBackoff(base, max, 43)
	diverged := false
	ceil := base
	for i := 0; i < 20; i++ {
		d1, d2, d3 := b1.next(), b2.next(), b3.next()
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, d1, d2)
		}
		if d1 != d3 {
			diverged = true
		}
		if d1 < ceil/2 || d1 > ceil {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d1, ceil/2, ceil)
		}
		if ceil < max {
			ceil *= 2
			if ceil > max {
				ceil = max
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter")
	}
	b1.reset()
	if d := b1.next(); d > base {
		t.Fatalf("post-reset delay %v exceeds base %v", d, base)
	}
}
