package transport

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/obs"
)

// Collector state errors.
var (
	// ErrCollectorClosed is returned by Serve after Close.
	ErrCollectorClosed = errors.New("transport: collector closed")
	// ErrCollectorServing is returned by a second Serve call: silently
	// replacing the listener would leak the first one and orphan its
	// accept goroutine.
	ErrCollectorServing = errors.New("transport: collector already serving")
)

// ackWriteTimeout bounds collector-side ACK writes so a dead peer cannot
// pin a handler goroutine.
const ackWriteTimeout = 10 * time.Second

// Collector is the cloud-side receiver: it accepts connections from edge
// devices, parses segment frames, and hands decompressed (or raw encoded)
// segments to a sink. It is the minimal centralized counterpart an
// AdaEdge deployment transmits to.
//
// Connections that open with a session hello get reliable-delivery
// semantics: the collector tracks a per-device cumulative watermark,
// drops redelivered segments (the resilient uplink retransmits everything
// unacknowledged after a reconnect), and answers every frame with a
// cumulative ACK. The sink therefore sees each segment ID exactly once
// per device even though the wire is at-least-once.
type Collector struct {
	reg  *compress.Registry
	sink func(Frame, []float64)
	// om caches the obs handles; nil until Instrument. Written before
	// Serve (see Instrument), read by handler goroutines.
	om *collectorMetrics

	mu         sync.Mutex
	ln         net.Listener // guarded by mu
	wg         sync.WaitGroup
	conns      map[net.Conn]struct{} // live connections; guarded by mu
	devices    map[uint64]*deviceState
	frames     int  // guarded by mu
	duplicates int  // guarded by mu
	badConns   int  // guarded by mu
	closed     bool // guarded by mu
}

// deviceState is the per-device delivery watermark, persistent across the
// device's reconnects.
type deviceState struct {
	// next is the cumulative watermark: every ID < next was delivered.
	next uint64
}

// NewCollector builds a receiver. sink is invoked for every frame with the
// decompressed values (nil when decode fails or the codec is unknown —
// the frame itself still carries the payload).
func NewCollector(reg *compress.Registry, sink func(Frame, []float64)) *Collector {
	if sink == nil {
		sink = func(Frame, []float64) {}
	}
	return &Collector{
		reg:     reg,
		sink:    sink,
		conns:   make(map[net.Conn]struct{}),
		devices: make(map[uint64]*deviceState),
	}
}

// Instrument attaches the observability substrate: delivery/redelivery
// counters and one trace-ring event per received frame (Source
// "transport.collector"). Must be called before Serve; a nil observer is
// a no-op. Returns the collector for chaining.
func (c *Collector) Instrument(o *obs.Observer) *Collector {
	c.om = newCollectorMetrics(o)
	return c
}

// Serve listens on addr ("127.0.0.1:0" for an ephemeral test port) and
// accepts connections until Close. It returns the bound address. A
// collector serves at most one listener: calling Serve while serving or
// after Close is an error.
func (c *Collector) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		_ = ln.Close()
		return nil, ErrCollectorClosed
	case c.ln != nil:
		c.mu.Unlock()
		_ = ln.Close()
		return nil, ErrCollectorServing
	}
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				_ = conn.Close()
				return
			}
			c.conns[conn] = struct{}{}
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(conn)
				c.mu.Lock()
				delete(c.conns, conn)
				c.mu.Unlock()
			}()
		}
	}()
	return ln.Addr(), nil
}

func (c *Collector) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	if magic, err := br.Peek(len(helloMagic)); err == nil && [4]byte(magic) == helloMagic {
		c.handleReliable(conn, br)
		return
	}
	c.handleLegacy(br)
}

// handleLegacy is the fire-and-forget path: frames in, nothing out.
func (c *Collector) handleLegacy(br *bufio.Reader) {
	r := NewReader(br)
	for {
		frame, err := r.Recv()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			c.noteBadConn()
			return
		}
		c.mu.Lock()
		c.frames++
		c.mu.Unlock()
		c.om.legacyFrame()
		c.sink(frame, c.decode(frame))
	}
}

// handleReliable is the hello/ACK path: per-device dedup, cumulative ACK
// after every frame.
func (c *Collector) handleReliable(conn net.Conn, br *bufio.Reader) {
	deviceID, err := readHello(br)
	if err != nil {
		c.noteBadConn()
		return
	}
	c.mu.Lock()
	dev, ok := c.devices[deviceID]
	if !ok {
		dev = &deviceState{}
		c.devices[deviceID] = dev
	}
	c.mu.Unlock()
	r := NewReader(br)
	bw := bufio.NewWriter(conn)
	for {
		frame, err := r.Recv()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			c.noteBadConn()
			return
		}
		c.mu.Lock()
		deliver := frame.ID >= dev.next
		if deliver {
			// The spool resends in ID order, so IDs at the watermark (or
			// above it, if the device shed segments) advance it; anything
			// below is a redelivery.
			dev.next = frame.ID + 1
			c.frames++
		} else {
			c.duplicates++
		}
		ackNext := dev.next
		c.mu.Unlock()
		c.om.frame(deviceID, frame.ID, deliver)
		if deliver {
			c.sink(frame, c.decode(frame))
		}
		_ = conn.SetWriteDeadline(time.Now().Add(ackWriteTimeout))
		if err := writeAck(bw, ackNext); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (c *Collector) decode(frame Frame) []float64 {
	if c.reg == nil {
		return nil
	}
	values, err := c.reg.Decompress(frame.Enc)
	if err != nil {
		return nil
	}
	return values
}

func (c *Collector) noteBadConn() {
	c.mu.Lock()
	c.badConns++
	c.mu.Unlock()
	c.om.badConn()
}

// Frames returns the number of frames delivered to the sink so far
// (duplicates excluded).
func (c *Collector) Frames() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// Duplicates returns the number of redelivered frames dropped by the
// per-device watermark.
func (c *Collector) Duplicates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.duplicates
}

// BadConns returns the number of connections dropped on malformed input.
func (c *Collector) BadConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.badConns
}

// Acked returns a device's cumulative watermark (all IDs below it were
// delivered) and whether the device has ever connected reliably.
func (c *Collector) Acked(deviceID uint64) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dev, ok := c.devices[deviceID]
	if !ok {
		return 0, false
	}
	return dev.next, true
}

// Close stops accepting, closes live connections, and waits for handlers.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, conn := range conns {
		_ = conn.Close()
	}
	c.wg.Wait()
	return err
}

// DefaultDialTimeout bounds Dial: a black-holed collector address must
// fail the device quickly, not hang it forever.
const DefaultDialTimeout = 10 * time.Second

// Uplink is the device-side sender: a connection plus framing. It is the
// plain fire-and-forget path; see ResilientUplink for spooled,
// acknowledged delivery.
type Uplink struct {
	conn         net.Conn
	w            *Writer
	writeTimeout time.Duration
}

// Dial connects to a Collector with DefaultDialTimeout.
func Dial(addr string) (*Uplink, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to a Collector, failing after timeout (0 means no
// bound).
func DialTimeout(addr string, timeout time.Duration) (*Uplink, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Uplink{conn: conn, w: NewWriter(conn)}, nil
}

// SetWriteTimeout bounds each Send/Flush: the write deadline is pushed
// forward by d before every operation (0 disables, the default).
func (u *Uplink) SetWriteTimeout(d time.Duration) { u.writeTimeout = d }

func (u *Uplink) pushDeadline() {
	if u.writeTimeout > 0 {
		_ = u.conn.SetWriteDeadline(time.Now().Add(u.writeTimeout))
	}
}

// Send transmits one segment frame.
func (u *Uplink) Send(f Frame) error {
	u.pushDeadline()
	return u.w.Send(f)
}

// Flush pushes buffered frames.
func (u *Uplink) Flush() error {
	u.pushDeadline()
	return u.w.Flush()
}

// Close flushes and closes the connection.
func (u *Uplink) Close() error {
	u.pushDeadline()
	if err := u.w.Flush(); err != nil {
		_ = u.conn.Close() // the flush error is the one worth reporting
		return err
	}
	return u.conn.Close()
}
