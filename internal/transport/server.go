package transport

import (
	"errors"
	"io"
	"net"
	"sync"

	"repro/internal/compress"
)

// Collector is the cloud-side receiver: it accepts connections from edge
// devices, parses segment frames, and hands decompressed (or raw encoded)
// segments to a sink. It is the minimal centralized counterpart an
// AdaEdge deployment transmits to.
type Collector struct {
	reg  *compress.Registry
	sink func(Frame, []float64)

	mu       sync.Mutex
	ln       net.Listener
	wg       sync.WaitGroup
	frames   int
	badConns int
	closed   bool
}

// NewCollector builds a receiver. sink is invoked for every frame with the
// decompressed values (nil when decode fails or the codec is unknown —
// the frame itself still carries the payload).
func NewCollector(reg *compress.Registry, sink func(Frame, []float64)) *Collector {
	if sink == nil {
		sink = func(Frame, []float64) {}
	}
	return &Collector{reg: reg, sink: sink}
}

// Serve listens on addr ("127.0.0.1:0" for an ephemeral test port) and
// accepts connections until Close. It returns the bound address.
func (c *Collector) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

func (c *Collector) handle(conn net.Conn) {
	defer conn.Close()
	r := NewReader(conn)
	for {
		frame, err := r.Recv()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			c.mu.Lock()
			c.badConns++
			c.mu.Unlock()
			return
		}
		var values []float64
		if c.reg != nil {
			if v, derr := c.reg.Decompress(frame.Enc); derr == nil {
				values = v
			}
		}
		c.mu.Lock()
		c.frames++
		c.mu.Unlock()
		c.sink(frame, values)
	}
}

// Frames returns the number of frames received so far.
func (c *Collector) Frames() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// BadConns returns the number of connections dropped on malformed input.
func (c *Collector) BadConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.badConns
}

// Close stops accepting and waits for in-flight connections.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	c.wg.Wait()
	return err
}

// Uplink is the device-side sender: a connection plus framing.
type Uplink struct {
	conn net.Conn
	w    *Writer
}

// Dial connects to a Collector.
func Dial(addr string) (*Uplink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Uplink{conn: conn, w: NewWriter(conn)}, nil
}

// Send transmits one segment frame.
func (u *Uplink) Send(f Frame) error { return u.w.Send(f) }

// Flush pushes buffered frames.
func (u *Uplink) Flush() error { return u.w.Flush() }

// Close flushes and closes the connection.
func (u *Uplink) Close() error {
	if err := u.w.Flush(); err != nil {
		_ = u.conn.Close() // the flush error is the one worth reporting
		return err
	}
	return u.conn.Close()
}
