package transport

import (
	"bufio"
	"errors"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/obs"
	"repro/internal/store"
)

// Collector state errors.
var (
	// ErrCollectorClosed is returned by Serve after Close.
	ErrCollectorClosed = errors.New("transport: collector closed")
	// ErrCollectorServing is returned by a second Serve call: silently
	// replacing the listener would leak the first one and orphan its
	// accept goroutine.
	ErrCollectorServing = errors.New("transport: collector already serving")
)

// ackWriteTimeout bounds collector-side ACK writes so a dead peer cannot
// pin a handler goroutine.
const ackWriteTimeout = 10 * time.Second

// Collector defaults; see CollectorConfig.
const (
	// DefaultCollectorShards is the device-map shard count when
	// CollectorConfig.Shards is 0.
	DefaultCollectorShards = 16
	// DefaultAckEvery is the v2 ACK coalescing factor when neither the
	// device hello nor CollectorConfig requests one.
	DefaultAckEvery = 16
	// maxAckEvery caps the negotiated coalescing factor so a hostile
	// hello cannot make the collector withhold ACKs indefinitely.
	maxAckEvery = 1024
)

// CollectorConfig parameterizes NewCollectorWith. The zero value selects
// the defaults NewCollector uses.
type CollectorConfig struct {
	// Shards is the device-map shard count (rounded up to a power of
	// two; default DefaultCollectorShards). Devices hash to shards by
	// ID, so unrelated devices never contend on one mutex.
	Shards int
	// AckEvery is the default v2 ACK coalescing factor for devices whose
	// hello does not request one (default DefaultAckEvery). Version-1
	// sessions always get lockstep per-frame ACKs regardless.
	AckEvery int
	// MaxIdleDevices bounds resident per-device session state for
	// devices with no live connection. When the bound is exceeded,
	// idle devices are evicted down to a watermark entry in Watermarks.
	// 0 disables eviction (every device stays resident forever).
	MaxIdleDevices int
	// Watermarks seeds and receives evicted delivery watermarks. When
	// nil and MaxIdleDevices > 0, a fresh in-memory table is created.
	// Passing a table restored via store.ReadWatermarks lets dedup
	// survive a collector restart.
	Watermarks *store.Watermarks
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Shards <= 0 {
		c.Shards = DefaultCollectorShards
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.AckEvery <= 0 {
		c.AckEvery = DefaultAckEvery
	}
	if c.MaxIdleDevices > 0 && c.Watermarks == nil {
		c.Watermarks = store.NewWatermarks()
	}
	return c
}

// Collector is the cloud-side receiver: it accepts connections from edge
// devices, parses segment frames, and hands decompressed (or raw encoded)
// segments to a sink. It is the minimal centralized counterpart an
// AdaEdge deployment transmits to.
//
// Connections that open with a session hello get reliable-delivery
// semantics: the collector tracks a per-device cumulative watermark and
// drops redelivered segments (the resilient uplink retransmits everything
// unacknowledged after a reconnect), so the sink sees each segment ID at
// most once per device even though the wire is at-least-once.
//
// Fleet-scale architecture (DESIGN.md §8):
//
//   - The per-device state map is sharded by device-ID hash; frames from
//     unrelated devices touch different mutexes and never contend.
//   - Each device is a single-writer session: a new reliable connection
//     for a device ID atomically takes ownership (bumping a generation
//     counter and closing the stale connection), and both the watermark
//     update and the sink call happen under the per-device mutex. Sink
//     calls for one device are therefore serialized and ID-ordered by
//     construction, no matter how many zombie connections a flaky
//     network leaves behind.
//   - ACKs are coalesced for protocol-v2 sessions (every K frames or
//     when the read side goes idle); v1 sessions keep the lockstep
//     one-ACK-per-frame exchange byte for byte.
//   - Idle devices beyond CollectorConfig.MaxIdleDevices are evicted
//     down to a watermark entry in a store.Watermarks table, so a fleet
//     of mostly-idle devices costs O(1) small entries each, and
//     eviction can never re-open a delivered ID.
//
// The sink's values slice is only valid for the duration of the call
// (decode buffers are pooled); sinks that retain values must copy.
type Collector struct {
	cfg  CollectorConfig
	reg  *compress.Registry
	sink func(Frame, []float64)
	wm   *store.Watermarks // evicted watermarks; nil when eviction is off
	// om caches the obs handles; nil until Instrument. Written before
	// Serve (see Instrument), read by handler goroutines.
	om *collectorMetrics

	shards []*collectorShard

	// Frame counters are updated on every frame from per-connection
	// handler goroutines across all shards, hence atomics rather than a
	// global mutex that would re-serialize the sharded hot path.
	frames     atomic.Int64 // delivered to the sink
	duplicates atomic.Int64 // dropped by a device watermark
	badConns   atomic.Int64 // connections dropped on malformed input
	kicked     atomic.Int64 // stale sessions displaced by a redial
	evictions  atomic.Int64 // idle devices evicted to the watermark table
	// idle counts resident devices with no live connection, across all
	// shards. Detach compare-and-increments it with a CAS loop against
	// cfg.MaxIdleDevices, so the idle bound is strict even under
	// concurrent detaches.
	idle atomic.Int64

	mu     sync.Mutex
	ln     net.Listener // guarded by mu
	wg     sync.WaitGroup
	conns  map[net.Conn]struct{} // live connections; guarded by mu
	closed bool                  // guarded by mu
}

// collectorShard is one slice of the per-device session map.
type collectorShard struct {
	mu      sync.Mutex
	devices map[uint64]*deviceState // guarded by mu
}

// deviceState is one device's delivery session, persistent across the
// device's reconnects (until evicted to the watermark table).
//
// Lock order: shard mutex before deviceState.mu (Close's watermark fold
// is the only path nesting them); never acquire the shard mutex while
// holding deviceState.mu. attach and detach deliberately hold the two
// one at a time, so a slow sink call (which runs under deviceState.mu)
// stalls only its own device, never the whole shard.
type deviceState struct {
	mu sync.Mutex
	// next is the cumulative watermark: every ID < next was delivered;
	// guarded by mu.
	next uint64
	// gen is the session generation. Each reliable connection that
	// attaches bumps it; a handler whose generation is stale has been
	// kicked and must stop delivering. Guarded by mu.
	gen uint64
	// conn is the owning session's connection, nil while the device is
	// idle; guarded by mu.
	conn net.Conn
	// idle reports that this device is counted in Collector.idle; set by
	// a non-evicting detach, cleared by the attach that revives the
	// session. Guarded by mu.
	idle bool
	// evicted marks a struct evicted down to the watermark table: the
	// watermark was stored before this flag was set, and the map entry
	// is on its way out. attach must not revive it — it clears the dead
	// entry and re-seeds from the table instead. Guarded by mu.
	evicted bool
	// health is the device's fleet-board row, cached so the per-frame
	// path touches atomics only (nil when uninstrumented; nil rows
	// no-op). Written once under mu by the first attach; a handler that
	// owns the session may read it without mu afterwards (its own attach
	// established the happens-before).
	health *obs.DeviceHealth
}

// NewCollector builds a receiver with default configuration. sink is
// invoked for every frame with the decompressed values (nil when decode
// fails or the codec is unknown — the frame itself still carries the
// payload). The values slice is reused after the sink returns; copy to
// retain.
func NewCollector(reg *compress.Registry, sink func(Frame, []float64)) *Collector {
	return NewCollectorWith(reg, sink, CollectorConfig{})
}

// NewCollectorWith builds a receiver with explicit fleet configuration.
func NewCollectorWith(reg *compress.Registry, sink func(Frame, []float64), cfg CollectorConfig) *Collector {
	if sink == nil {
		sink = func(Frame, []float64) {}
	}
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:    cfg,
		reg:    reg,
		sink:   sink,
		wm:     cfg.Watermarks,
		shards: make([]*collectorShard, cfg.Shards),
		conns:  make(map[net.Conn]struct{}),
	}
	for i := range c.shards {
		c.shards[i] = &collectorShard{devices: make(map[uint64]*deviceState)}
	}
	return c
}

// shard maps a device ID to its shard. The ID is mixed through
// splitmix64 first so sequential fleet IDs spread across shards.
func (c *Collector) shard(deviceID uint64) *collectorShard {
	state := deviceID
	return c.shards[splitmix64(&state)&uint64(len(c.shards)-1)]
}

// Instrument attaches the observability substrate: delivery/redelivery
// counters, session/eviction counters, ACK-batch and shard-depth
// histograms, and one trace-ring event per received frame (Source
// "transport.collector"). Must be called before Serve; a nil observer is
// a no-op. Returns the collector for chaining.
func (c *Collector) Instrument(o *obs.Observer) *Collector {
	c.om = newCollectorMetrics(o)
	return c
}

// Serve listens on addr ("127.0.0.1:0" for an ephemeral test port) and
// accepts connections until Close. It returns the bound address. A
// collector serves at most one listener: calling Serve while serving or
// after Close is an error.
func (c *Collector) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		_ = ln.Close()
		return nil, ErrCollectorClosed
	case c.ln != nil:
		c.mu.Unlock()
		_ = ln.Close()
		return nil, ErrCollectorServing
	}
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				_ = conn.Close()
				return
			}
			c.conns[conn] = struct{}{}
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(conn)
				c.mu.Lock()
				delete(c.conns, conn)
				c.mu.Unlock()
			}()
		}
	}()
	return ln.Addr(), nil
}

func (c *Collector) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	if magic, err := br.Peek(len(helloMagic)); err == nil && [4]byte(magic) == helloMagic {
		c.handleReliable(conn, br)
		return
	}
	c.handleLegacy(br)
}

// handleLegacy is the fire-and-forget path: frames in, nothing out.
func (c *Collector) handleLegacy(br *bufio.Reader) {
	r := NewReader(br)
	for {
		frame, err := r.Recv()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			c.noteBadConn()
			return
		}
		c.frames.Add(1)
		c.om.legacyFrame()
		values, release := c.decode(frame)
		c.sink(frame, values)
		release()
	}
}

// attach takes single-writer ownership of deviceID for conn: it creates
// or revives the device session (seeding the watermark from the eviction
// table for returning devices), bumps the session generation, and kicks
// any stale connection. It returns the session and the generation this
// handler owns.
func (c *Collector) attach(deviceID uint64, conn net.Conn) (*deviceState, uint64) {
	sh := c.shard(deviceID)
	for {
		sh.mu.Lock()
		dev, resident := sh.devices[deviceID]
		if !resident {
			dev = &deviceState{}
			if c.wm != nil {
				if next, ok := c.wm.Load(deviceID); ok {
					dev.next = next
				}
			}
			sh.devices[deviceID] = dev
		}
		c.om.shardDepth(len(sh.devices))
		// The shard lock is dropped before waiting on the device: the
		// stale session may be mid-sink under dev.mu, and holding sh.mu
		// across that wait would stall attach/detach for every unrelated
		// device in the shard. The map entry keeps dev pinned. Waiting on
		// dev.mu is still what guarantees the old session's in-flight
		// sink call completes before the new session's first one.
		sh.mu.Unlock()
		dev.mu.Lock()
		if dev.evicted {
			// Lost a race with an evicting detach: the watermark is
			// already in the table, but the dead struct may still shadow
			// it in the map. Clear it (detach's delete is identity-checked
			// too, so whoever gets there first wins) and start over from
			// the table.
			dev.mu.Unlock()
			sh.mu.Lock()
			if sh.devices[deviceID] == dev {
				delete(sh.devices, deviceID)
			}
			sh.mu.Unlock()
			continue
		}
		if dev.idle {
			dev.idle = false
			c.idle.Add(-1)
		}
		if dev.health == nil {
			dev.health = c.om.device(deviceID)
		}
		dev.health.SetWatermark(dev.next)
		stale := dev.conn
		dev.gen++
		gen := dev.gen
		dev.conn = conn
		health := dev.health
		dev.mu.Unlock()
		if stale != nil {
			_ = stale.Close()
			c.kicked.Add(1)
			c.om.sessionKicked()
			health.NoteKick()
		}
		return dev, gen
	}
}

// detach releases a handler's session ownership. If a newer session has
// already kicked this one, detach is a no-op; otherwise the device goes
// idle and, past the idle bound, is evicted down to its watermark.
func (c *Collector) detach(deviceID uint64, dev *deviceState, gen uint64) {
	dev.mu.Lock()
	if dev.gen != gen {
		dev.mu.Unlock()
		return
	}
	dev.conn = nil
	// Strict idle bound: the compare and the increment must be one
	// atomic step, or concurrent detaches could all pass the check and
	// leave resident idle devices above the configured bound.
	evict := false
	if c.cfg.MaxIdleDevices > 0 {
		for {
			n := c.idle.Load()
			if n >= int64(c.cfg.MaxIdleDevices) {
				evict = true
				break
			}
			if c.idle.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		c.idle.Add(1)
	}
	dev.idle = !evict
	if c.wm != nil {
		// The watermark goes into the table before the map entry can be
		// observed gone: evicted is set in this same critical section,
		// and the map delete (here or in attach's cleanup) happens only
		// after evicted was observed under dev.mu. A device reconnecting
		// mid-eviction therefore always finds the resident session or
		// the table entry — never neither, which would seed next=0 and
		// redeliver everything already delivered.
		c.wm.Store(deviceID, dev.next)
	}
	if evict {
		dev.evicted = true
	}
	health := dev.health
	dev.mu.Unlock()
	if !evict {
		return
	}
	health.NoteEviction()
	sh := c.shard(deviceID)
	sh.mu.Lock()
	// attach may have cleared the dead struct already (and replaced it
	// with a revived session); only ever remove our own.
	if sh.devices[deviceID] == dev {
		delete(sh.devices, deviceID)
	}
	depth := len(sh.devices)
	sh.mu.Unlock()
	c.evictions.Add(1)
	c.om.eviction()
	c.om.shardDepth(depth)
}

// handleReliable is the hello/ACK path: per-device dedup with serialized,
// ID-ordered sink calls; lockstep ACKs for v1 sessions, coalesced ACKs
// for v2.
func (c *Collector) handleReliable(conn net.Conn, br *bufio.Reader) {
	h, err := readHello(br)
	if err != nil {
		c.noteBadConn()
		return
	}
	ackEvery := uint64(1)
	if h.version >= helloVersion2 {
		ackEvery = h.ackEvery
		if ackEvery == 0 {
			ackEvery = uint64(c.cfg.AckEvery)
		}
		if ackEvery > maxAckEvery {
			ackEvery = maxAckEvery
		}
	}
	dev, gen := c.attach(h.deviceID, conn)
	defer c.detach(h.deviceID, dev, gen)
	r := NewReader(br)
	bw := bufio.NewWriter(conn)
	var pending uint64 // frames received since the last ACK
	for {
		frame, err := r.Recv()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			// A kicked session's connection is closed under it mid-read;
			// that is a clean takeover, not a protocol violation.
			dev.mu.Lock()
			stale := dev.gen != gen
			dev.mu.Unlock()
			if !stale {
				c.noteBadConn()
			}
			return
		}
		if frame.ID == math.MaxUint64 {
			// A MaxUint64 ID would wrap the cumulative watermark
			// (next = ID+1 = 0), silently re-opening every past ID for
			// redelivery. No legitimate device reaches 2^64-1 segments;
			// reject the frame and drop the connection.
			c.noteBadConn()
			return
		}
		dev.mu.Lock()
		if dev.gen != gen {
			// Kicked: a newer session owns this device. Stop without
			// delivering or acking; the new session will see the
			// retransmit and dedup it against the shared watermark.
			dev.mu.Unlock()
			return
		}
		deliver := frame.ID >= dev.next
		if deliver {
			// Decode only frames the watermark admits: a reconnect storm
			// retransmits everything unacknowledged in bulk, and paying
			// full decompression for duplicates the very next line drops
			// would make the herd redial even more expensive. The decode
			// shares dev.mu with the sink call, which already serializes
			// this device's deliveries.
			values, release := c.decode(frame)
			// The spool resends in ID order, so IDs at the watermark (or
			// above it, if the device shed segments) advance it; anything
			// below is a redelivery.
			dev.next = frame.ID + 1
			c.frames.Add(1)
			dev.health.NoteDelivery()
			dev.health.SetWatermark(dev.next)
			// The sink runs under dev.mu: this is the single-writer
			// guarantee that per-device sink calls are serialized and
			// ID-ordered even if a zombie connection lingers. Counters and
			// the trace event stay inside the critical section too, so the
			// per-device event order in the ring matches delivery order.
			c.sink(frame, values)
			release()
		} else {
			c.duplicates.Add(1)
			dev.health.NoteRedelivery()
		}
		c.om.frame(h.deviceID, frame.ID, frame.Trace, deliver)
		ackNext := dev.next
		// Capture under dev.mu: a concurrent reattach writes dev.health
		// while this (possibly kicked) session is still draining its read
		// side, so the field itself must not be touched after the unlock.
		health := dev.health
		dev.mu.Unlock()
		pending++
		// v1 acks in lockstep (ackEvery == 1); v2 coalesces: ack every
		// ackEvery frames, or as soon as the read side goes idle so the
		// tail of a burst is never left waiting.
		if pending < ackEvery && br.Buffered() > 0 {
			continue
		}
		_ = conn.SetWriteDeadline(time.Now().Add(ackWriteTimeout))
		if err := writeAck(bw, ackNext); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		c.om.ackBatch(pending)
		health.NoteAckBatch(pending)
		pending = 0
	}
}

// decodeBufPool recycles decode buffers across frames and connections:
// the collector's per-frame hot path must not allocate per decode
// (DESIGN.md §10). Buffers grow to the largest segment seen and are
// handed to the sink, so sink values are only valid during the call.
var decodeBufPool = sync.Pool{
	New: func() any { b := make([]float64, 0, 256); return &b },
}

// decode decompresses a frame into a pooled buffer. release returns the
// buffer to the pool; callers must not touch values after calling it.
func (c *Collector) decode(frame Frame) (values []float64, release func()) {
	if c.reg == nil {
		return nil, func() {}
	}
	bp := decodeBufPool.Get().(*[]float64)
	out, err := c.reg.DecompressInto((*bp)[:0], frame.Enc)
	if err != nil {
		decodeBufPool.Put(bp)
		return nil, func() {}
	}
	*bp = out
	return out, func() {
		decodeBufPool.Put(bp)
	}
}

func (c *Collector) noteBadConn() {
	c.badConns.Add(1)
	c.om.badConn()
}

// Frames returns the number of frames delivered to the sink so far
// (duplicates excluded).
func (c *Collector) Frames() int { return int(c.frames.Load()) }

// Duplicates returns the number of redelivered frames dropped by the
// per-device watermark.
func (c *Collector) Duplicates() int { return int(c.duplicates.Load()) }

// BadConns returns the number of connections dropped on malformed input.
func (c *Collector) BadConns() int { return int(c.badConns.Load()) }

// Kicked returns the number of stale sessions displaced by a newer
// connection for the same device.
func (c *Collector) Kicked() int { return int(c.kicked.Load()) }

// Evictions returns the number of idle devices evicted down to the
// watermark table.
func (c *Collector) Evictions() int { return int(c.evictions.Load()) }

// ResidentDevices returns the number of devices with full session state
// in memory (idle or connected); evicted devices are excluded.
func (c *Collector) ResidentDevices() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.devices)
		sh.mu.Unlock()
	}
	return n
}

// Watermarks returns the eviction watermark table (nil when eviction is
// disabled and no table was configured). Serialize it with WriteTo to
// carry dedup state across a collector restart.
func (c *Collector) Watermarks() *store.Watermarks { return c.wm }

// Acked returns a device's cumulative watermark (all IDs below it were
// delivered) and whether the device is known — resident or evicted.
func (c *Collector) Acked(deviceID uint64) (uint64, bool) {
	sh := c.shard(deviceID)
	sh.mu.Lock()
	dev, ok := sh.devices[deviceID]
	sh.mu.Unlock()
	if ok {
		dev.mu.Lock()
		next := dev.next
		dev.mu.Unlock()
		return next, true
	}
	if c.wm != nil {
		return c.wm.Load(deviceID)
	}
	return 0, false
}

// Close stops accepting, closes live connections, and waits for handlers.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, conn := range conns {
		_ = conn.Close()
	}
	c.wg.Wait()
	if c.wm != nil {
		// Fold every resident watermark into the table so a restart
		// carrying the serialized table never re-delivers.
		for _, sh := range c.shards {
			sh.mu.Lock()
			for id, dev := range sh.devices {
				dev.mu.Lock()
				c.wm.Store(id, dev.next)
				dev.mu.Unlock()
			}
			sh.mu.Unlock()
		}
	}
	return err
}

// DefaultDialTimeout bounds Dial: a black-holed collector address must
// fail the device quickly, not hang it forever.
const DefaultDialTimeout = 10 * time.Second

// Uplink is the device-side sender: a connection plus framing. It is the
// plain fire-and-forget path; see ResilientUplink for spooled,
// acknowledged delivery.
type Uplink struct {
	conn         net.Conn
	w            *Writer
	writeTimeout time.Duration
}

// Dial connects to a Collector with DefaultDialTimeout.
func Dial(addr string) (*Uplink, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to a Collector, failing after timeout (0 means no
// bound).
func DialTimeout(addr string, timeout time.Duration) (*Uplink, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Uplink{conn: conn, w: NewWriter(conn)}, nil
}

// SetWriteTimeout bounds each Send/Flush: the write deadline is pushed
// forward by d before every operation (0 disables, the default).
func (u *Uplink) SetWriteTimeout(d time.Duration) { u.writeTimeout = d }

func (u *Uplink) pushDeadline() {
	if u.writeTimeout > 0 {
		_ = u.conn.SetWriteDeadline(time.Now().Add(u.writeTimeout))
	}
}

// Send transmits one segment frame.
func (u *Uplink) Send(f Frame) error {
	u.pushDeadline()
	return u.w.Send(f)
}

// Flush pushes buffered frames.
func (u *Uplink) Flush() error {
	u.pushDeadline()
	return u.w.Flush()
}

// Close flushes and closes the connection.
func (u *Uplink) Close() error {
	u.pushDeadline()
	if err := u.w.Flush(); err != nil {
		_ = u.conn.Close() // the flush error is the one worth reporting
		return err
	}
	return u.conn.Close()
}
