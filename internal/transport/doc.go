// Package transport ships compressed segments over a network connection —
// the egress stage of AdaEdge's online mode ("we send out those segments
// through a network protocol", paper §IV-B1). The wire format is a
// varint-framed stream of self-describing segments carrying the codec
// metadata the receiver needs to decompress (paper §IV-C: "each segment …
// is associated with metadata describing its compression configurations").
//
// Frame layout (little-endian, one frame per segment):
//
//	magic "AES1"
//	uvarint id | zigzag-varint label | uvarint len(codec) | codec |
//	uvarint N | uvarint len(data) | data
//
// The plain Writer/Reader pair streams frames fire-and-forget; the stream
// ends with the sender closing its side and no trailer is needed.
//
// # Reliable delivery
//
// ResilientUplink (resilient.go) layers fault tolerance on top: frames
// are journaled into a bounded Spool before any network I/O, a single
// pump goroutine sends them in frame→ACK lockstep, and on any error the
// uplink redials with seeded exponential-backoff jitter and resends from
// the first unacknowledged frame. Collector (server.go) is the receiving
// side: a per-device ACK watermark makes redelivered frames idempotent,
// so the pair provides exactly-once delivery to the sink (DESIGN.md §8).
//
// # Observability
//
// ResilientConfig.Obs instruments the uplink (dial/send/ack/backoff
// counters, spool-depth and RTT histograms, and one trace event per
// lifecycle transition, all emitted from the pump goroutine in order);
// Collector.Instrument attaches the receiving side (frame, duplicate and
// bad-connection counters plus deliver/redeliver events). Event fields
// carry no wall clocks, so seeded chaos runs compare traces byte-for-byte
// (DESIGN.md §9).
package transport
