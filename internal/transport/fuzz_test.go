package transport

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"repro/internal/compress"
)

// FuzzFrameReader: arbitrary bytes must never panic the frame parser or
// make it allocate past the payload bound.
func FuzzFrameReader(f *testing.F) {
	// Seed with a valid two-frame stream.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	paa := compress.NewPAA()
	enc, err := paa.CompressRatio([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 0.5)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Send(Frame{ID: 1, Label: 2, Enc: enc})
	_ = w.Send(Frame{ID: 2, Label: -1, Enc: enc})
	_ = w.Flush()
	f.Add(buf.Bytes())
	// The watermark-overflow poison frame: ID MaxUint64 parses fine at
	// this layer (the collector rejects it) and must never panic or wrap
	// anything in the reader.
	var poison bytes.Buffer
	pw := NewWriter(&poison)
	_ = pw.Send(Frame{ID: 1<<64 - 1, Label: 0, Enc: enc})
	_ = pw.Flush()
	f.Add(poison.Bytes())
	f.Add([]byte("AES1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded frames per input
			frame, err := r.Recv()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // rejected: fine
			}
			if len(frame.Enc.Data) > maxFrameData {
				t.Fatal("payload bound violated")
			}
			if frame.Enc.N < 0 || frame.Enc.N > maxFramePoints {
				t.Fatalf("point count %d escaped validation", frame.Enc.N)
			}
		}
	})
}

// FuzzAckReader: arbitrary bytes must never panic the ACK parser; torn
// input is an error, never a silently wrong watermark.
func FuzzAckReader(f *testing.F) {
	var buf bytes.Buffer
	_ = writeAck(&buf, 7)
	_ = writeAck(&buf, 1<<40)
	f.Add(buf.Bytes())
	f.Add([]byte("AEA1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded ACKs per input
			if _, err := readAck(r); err != nil {
				return // io.EOF or rejected: fine
			}
		}
	})
}
