package transport

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// ResilientUplink is the fault-tolerant device-side sender: Send spools
// the frame in a bounded on-device queue (backed by store.Spool) and
// returns without touching the network; a single pump goroutine owns all
// I/O, sending spooled frames in ID order with write deadlines and
// reading the collector's cumulative ACK after each one. On any
// connection error the pump backs off exponentially (deterministic,
// seeded jitter), redials, and resends from the first unacknowledged
// frame. The wire is therefore at-least-once; the collector's per-device
// watermark turns it into exactly-once at the sink.
//
// The uplink speaks one of two session protocols (ResilientConfig.
// Protocol):
//
//   - Version 1 (default) is the frame→ACK lockstep. It trades
//     pipelining for a property the chaos tests depend on: the entire
//     network interaction is a deterministic function of the spooled
//     traffic and the fault schedule, so two runs with the same seed
//     produce the same retry/ACK trace.
//   - Version 2 pipelines: the pump streams spooled frames without
//     waiting, and a per-session ACK-reader goroutine applies the
//     collector's coalesced cumulative ACKs as they arrive. Throughput
//     no longer pays a round trip per frame, but the interleaving of
//     send and ack events is scheduler-dependent, so seeded chaos
//     comparisons stay on version 1.
type ResilientUplink struct {
	cfg   ResilientConfig
	spool *store.Spool
	boff  backoff
	work  chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup
	// om caches the obs handles; nil when ResilientConfig.Obs is unset.
	om *uplinkMetrics
	// ackVisit closes the wire.ack span stage for each entry an ACK
	// releases (nil when uninstrumented; built once to keep the ACK path
	// allocation-free).
	ackVisit func(*store.Entry)
	// evMu serializes the delivery trace: in pipelined mode events come
	// from both the pump and the session's ACK reader, and OnEvent
	// consumers are promised sequential calls.
	evMu sync.Mutex

	mu     sync.Mutex
	conn   net.Conn // current connection, nil between dials; guarded by mu
	closed bool     // guarded by mu
	stats  UplinkStats
	// drainWait, when non-nil, is closed as soon as the spool is
	// observed empty after an ACK advance; guarded by mu. WaitDrain
	// blocks on it instead of polling.
	drainWait chan struct{}
	// br and w frame the current conn; replaced on redial. Only the pump
	// touches them, but they are replaced under mu alongside conn.
	br *bufio.Reader
	w  *Writer
}

// ResilientConfig parameterizes DialResilient. The zero value of every
// field except Addr is usable.
type ResilientConfig struct {
	// Addr is the collector address.
	Addr string
	// DeviceID identifies this device to the collector's dedup watermark.
	// Devices sharing a collector must use distinct IDs.
	DeviceID uint64
	// Protocol selects the session protocol: 0 or 1 is the version-1
	// lockstep (deterministic, one ACK per frame), 2 is the pipelined
	// version-2 session with coalesced ACKs.
	Protocol int
	// AckEvery is the ACK coalescing factor requested in the version-2
	// hello (0 asks for the collector's default). Ignored for version 1.
	AckEvery int
	// DialTimeout bounds each dial attempt (default DefaultDialTimeout).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
	// AckTimeout bounds the wait for each cumulative ACK (default 10s).
	AckTimeout time.Duration
	// BackoffBase and BackoffMax bound the exponential redial backoff
	// (defaults 50ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter; the same seed yields the same
	// delay sequence.
	Seed int64
	// SpoolSegments and SpoolBytes bound the spool (see store.NewSpool).
	SpoolSegments int
	SpoolBytes    int64
	// HighWater is the spool pressure mark in (0,1) (default 0.75).
	HighWater float64
	// OnPressure fires when spool utilization crosses HighWater in either
	// direction. Wire it to OnlineEngine.Degrade for graceful
	// degradation: tighten the effective bandwidth target while the
	// backlog is deep, restore it once the spool drains.
	OnPressure func(over bool)
	// Dialer overrides the transport (fault injection, tests). Default
	// is net.DialTimeout over TCP.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// OnEvent observes the delivery trace (dials, sends, ACKs, backoff).
	// Called from the pump goroutine; must not block.
	OnEvent func(Event)
	// Obs mirrors the delivery trace into the observability substrate:
	// per-kind counters, a spool-depth gauge/histogram, a frame→ACK RTT
	// histogram, and one trace-ring event per delivery-trace Event. Nil
	// disables at the cost of one branch per event.
	Obs *obs.Observer
}

// Event is one entry of the uplink's delivery trace.
type Event struct {
	// Kind is one of "dial", "dial-fail", "send", "send-fail", "ack",
	// "ack-fail", "backoff".
	Kind string
	// ID is the frame ID (send), ACK watermark (ack), or dial attempt
	// ordinal (dial/dial-fail).
	ID uint64
	// Wait is the backoff delay (backoff events only).
	Wait time.Duration
	// Err carries the failure (fail events only).
	Err string
}

// UplinkStats summarizes delivery progress.
type UplinkStats struct {
	// FramesSent counts frame writes, including retransmissions.
	FramesSent int
	// Acked is the collector's cumulative watermark.
	Acked uint64
	// Dials and DialFailures count connection attempts.
	Dials, DialFailures int
	// SendFailures counts frame writes that broke the connection.
	SendFailures int
	// AckFailures counts ACK reads that broke the connection (timeouts
	// and torn reads on the collector→device half), kept separate from
	// SendFailures so the two halves stay diagnosable.
	AckFailures int
	// Pending and Dropped report the spool state.
	Pending, Dropped int
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 5 * time.Second
		if c.BackoffMax < c.BackoffBase {
			c.BackoffMax = c.BackoffBase
		}
	}
	if c.AckEvery < 0 {
		c.AckEvery = 0
	}
	if c.Dialer == nil {
		c.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return c
}

// ErrUplinkClosed is returned by Send after Close.
var ErrUplinkClosed = errors.New("transport: uplink closed")

// DialResilient starts a resilient uplink toward cfg.Addr. It returns
// immediately: the first dial happens on the pump goroutine, and an
// unreachable collector just means frames accumulate in the spool until
// the bound sheds them.
func DialResilient(cfg ResilientConfig) (*ResilientUplink, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" {
		return nil, errors.New("transport: resilient uplink needs an address")
	}
	u := &ResilientUplink{
		cfg:  cfg,
		boff: newBackoff(cfg.BackoffBase, cfg.BackoffMax, cfg.Seed),
		work: make(chan struct{}, 1),
		done: make(chan struct{}),
		om:   newUplinkMetrics(cfg.Obs, cfg.DeviceID),
	}
	if u.om != nil {
		u.ackVisit = func(e *store.Entry) { u.om.spanAck(e.Trace, e.ID) }
	}
	u.spool = store.NewSpool(cfg.SpoolSegments, cfg.SpoolBytes, cfg.HighWater, cfg.OnPressure)
	u.wg.Add(1)
	go u.run()
	return u, nil
}

// Send spools one frame for delivery. It never blocks on the network;
// when the spool bound is reached it fails with store.ErrSpoolFull and
// the caller sheds the segment.
func (u *ResilientUplink) Send(f Frame) error {
	u.mu.Lock()
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return ErrUplinkClosed
	}
	err := u.spool.Append(&store.Entry{ID: f.ID, Label: f.Label, Trace: f.Trace, Enc: f.Enc})
	if err != nil {
		u.om.reject()
		return err
	}
	if u.om != nil {
		depth := u.spool.Len()
		u.om.spoolDepth(depth)
		u.om.spanEnqueue(f.Trace, f.ID, depth)
	}
	select {
	case u.work <- struct{}{}:
	default:
	}
	return nil
}

// Pending returns the number of spooled, unacknowledged frames.
func (u *ResilientUplink) Pending() int { return u.spool.Len() }

// Acked returns the collector's cumulative watermark: every frame ID
// below it is confirmed delivered.
func (u *ResilientUplink) Acked() uint64 { return u.spool.Acked() }

// Stats returns a snapshot of delivery progress.
func (u *ResilientUplink) Stats() UplinkStats {
	u.mu.Lock()
	st := u.stats
	u.mu.Unlock()
	st.Acked = u.spool.Acked()
	st.Pending = u.spool.Len()
	st.Dropped = u.spool.Dropped()
	return st
}

// WaitDrain blocks until every spooled frame is acknowledged or the
// timeout expires. It parks on a drain-notification channel signalled
// from the ACK path (no polling).
func (u *ResilientUplink) WaitDrain(timeout time.Duration) error {
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		u.mu.Lock()
		if u.spool.Len() == 0 {
			u.mu.Unlock()
			return nil
		}
		if u.drainWait == nil {
			u.drainWait = make(chan struct{})
		}
		ch := u.drainWait
		u.mu.Unlock()
		select {
		case <-ch:
			// Woken by an ACK advance; re-check — a concurrent Send may
			// have refilled the spool.
		case <-t.C:
			return errors.New("transport: drain timeout")
		}
	}
}

// notifyDrain wakes WaitDrain callers when an ACK advance empties the
// spool. Spurious wakeups are fine (WaitDrain re-checks); missed empties
// are not, so it runs after every AckBelow.
func (u *ResilientUplink) notifyDrain() {
	if u.spool.Len() > 0 {
		return
	}
	u.mu.Lock()
	if u.drainWait != nil {
		close(u.drainWait)
		u.drainWait = nil
	}
	u.mu.Unlock()
}

// Close stops the pump and closes the connection. Frames still spooled
// are abandoned; call WaitDrain first for a graceful shutdown.
func (u *ResilientUplink) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	conn := u.conn
	u.mu.Unlock()
	close(u.done)
	if conn != nil {
		_ = conn.Close()
	}
	u.wg.Wait()
	return nil
}

func (u *ResilientUplink) event(e Event) {
	u.evMu.Lock()
	defer u.evMu.Unlock()
	if u.cfg.OnEvent != nil {
		u.cfg.OnEvent(e)
	}
	u.om.event(e)
}

// sleep waits d or until Close, reporting whether the uplink is still
// open.
func (u *ResilientUplink) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-u.done:
		return false
	}
}

// run is the pump: it owns every network write (in pipelined mode a
// per-session ACK-reader goroutine owns the reads).
func (u *ResilientUplink) run() {
	defer u.wg.Done()
	defer u.dropConn()
	pipelined := u.cfg.Protocol >= 2
	for {
		head, ok := u.spool.Head()
		if !ok {
			select {
			case <-u.work:
				continue
			case <-u.done:
				return
			}
		}
		select {
		case <-u.done:
			return
		default:
		}
		if !u.connected() && !u.connect() {
			// connect already backed off; bail out only on Close.
			select {
			case <-u.done:
				return
			default:
				continue
			}
		}
		var err error
		if pipelined {
			err = u.sessionPipelined()
		} else {
			err = u.sendOne(head)
		}
		if err != nil {
			u.dropConn()
			wait := u.boff.next()
			u.event(Event{Kind: "backoff", Wait: wait})
			if !u.sleep(wait) {
				return
			}
		}
	}
}

func (u *ResilientUplink) connected() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.conn != nil
}

func (u *ResilientUplink) dropConn() {
	u.mu.Lock()
	conn := u.conn
	u.conn, u.br, u.w = nil, nil, nil
	u.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// connect dials, sends the session hello, and installs the connection.
// On failure it records the event and backs off; it reports whether a
// connection is installed.
func (u *ResilientUplink) connect() bool {
	u.mu.Lock()
	u.stats.Dials++
	attempt := uint64(u.stats.Dials)
	u.mu.Unlock()
	conn, err := u.cfg.Dialer(u.cfg.Addr, u.cfg.DialTimeout)
	if err == nil {
		_ = conn.SetWriteDeadline(time.Now().Add(u.cfg.WriteTimeout))
		if u.cfg.Protocol >= 2 {
			err = writeHelloV2(conn, u.cfg.DeviceID, uint64(u.cfg.AckEvery))
		} else {
			err = writeHello(conn, u.cfg.DeviceID)
		}
		if err != nil {
			_ = conn.Close()
		}
	}
	if err != nil {
		u.mu.Lock()
		u.stats.DialFailures++
		u.mu.Unlock()
		u.event(Event{Kind: "dial-fail", ID: attempt, Err: err.Error()})
		wait := u.boff.next()
		u.event(Event{Kind: "backoff", Wait: wait})
		if !u.sleep(wait) {
			return false
		}
		return false
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		_ = conn.Close()
		return false
	}
	u.conn = conn
	u.br = bufio.NewReader(conn)
	u.w = NewWriter(conn)
	u.mu.Unlock()
	u.event(Event{Kind: "dial", ID: attempt})
	return true
}

// sendOne transmits the head frame and waits for the cumulative ACK.
func (u *ResilientUplink) sendOne(e *store.Entry) error {
	u.mu.Lock()
	conn, br, w := u.conn, u.br, u.w
	u.mu.Unlock()
	if conn == nil {
		return net.ErrClosed
	}
	rttFrom := u.om.rttStart()
	_ = conn.SetWriteDeadline(time.Now().Add(u.cfg.WriteTimeout))
	err := w.Send(Frame{ID: e.ID, Label: e.Label, Trace: e.Trace, Enc: e.Enc})
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		u.mu.Lock()
		u.stats.SendFailures++
		u.mu.Unlock()
		u.event(Event{Kind: "send-fail", ID: e.ID, Err: err.Error()})
		return err
	}
	u.mu.Lock()
	u.stats.FramesSent++
	u.mu.Unlock()
	u.event(Event{Kind: "send", ID: e.ID})
	u.om.spanSend(e.Trace, e.ID)
	_ = conn.SetReadDeadline(time.Now().Add(u.cfg.AckTimeout))
	next, err := readAck(br)
	if err != nil {
		u.mu.Lock()
		u.stats.AckFailures++
		u.mu.Unlock()
		u.event(Event{Kind: "ack-fail", ID: e.ID, Err: err.Error()})
		return err
	}
	u.om.rttDone(rttFrom)
	u.ackTo(next)
	u.event(Event{Kind: "ack", ID: next})
	u.boff.reset()
	return nil
}

// sessionPipelined runs one version-2 session: the pump streams spooled
// frames past a send cursor without waiting for ACKs, while ackLoop (a
// per-session goroutine) applies the collector's coalesced cumulative
// ACKs. Either side's error tears the session down; the pump then backs
// off, redials, and resends from the first unacknowledged frame. It
// returns nil only when the uplink is closing.
func (u *ResilientUplink) sessionPipelined() error {
	u.mu.Lock()
	conn, br, w := u.conn, u.br, u.w
	u.mu.Unlock()
	if conn == nil {
		return net.ErrClosed
	}
	ackErr := make(chan error, 1)
	sent := make(chan struct{}, 1)
	stop := make(chan struct{})
	var acked atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		u.ackLoop(conn, br, sent, stop, ackErr, &acked)
	}()
	teardown := func(err error) error {
		close(stop)
		u.dropConn() // unblocks the reader's readAck
		wg.Wait()
		if acked.Load() {
			// The session made progress; the next failure is a fresh
			// incident, not a continuation of this one.
			u.boff.reset()
		}
		return err
	}

	var cursor uint64
	var sentAny bool
	for {
		var e *store.Entry
		var ok bool
		if sentAny {
			e, ok = u.spool.HeadAfter(cursor)
		} else {
			e, ok = u.spool.Head()
		}
		if !ok {
			// Everything spooled is in flight (or the spool is empty):
			// park until new work, an ACK-side verdict, or Close.
			select {
			case <-u.work:
				continue
			case err := <-ackErr:
				return teardown(err)
			case <-u.done:
				return teardown(nil)
			}
		}
		select {
		case err := <-ackErr:
			return teardown(err)
		case <-u.done:
			return teardown(nil)
		default:
		}
		_ = conn.SetWriteDeadline(time.Now().Add(u.cfg.WriteTimeout))
		err := w.Send(Frame{ID: e.ID, Label: e.Label, Trace: e.Trace, Enc: e.Enc})
		if err == nil {
			err = w.Flush()
		}
		if err != nil {
			u.mu.Lock()
			u.stats.SendFailures++
			u.mu.Unlock()
			u.event(Event{Kind: "send-fail", ID: e.ID, Err: err.Error()})
			return teardown(err)
		}
		u.mu.Lock()
		u.stats.FramesSent++
		u.mu.Unlock()
		u.event(Event{Kind: "send", ID: e.ID})
		u.om.spanSend(e.Trace, e.ID)
		cursor, sentAny = e.ID, true
		select {
		case sent <- struct{}{}:
		default:
		}
	}
}

// ackLoop is the version-2 session's read half: it applies cumulative
// ACKs while frames are outstanding and parks while the spool is empty
// (an idle session expects no ACKs, so no read deadline may fire). The
// first error is posted to ackErr and ends the loop.
func (u *ResilientUplink) ackLoop(conn net.Conn, br *bufio.Reader, sent, stop <-chan struct{}, ackErr chan<- error, acked *atomic.Bool) {
	for {
		if u.spool.Len() == 0 {
			select {
			case <-sent:
				continue // frames in flight again; resume reading
			case <-stop:
				return
			}
		}
		_ = conn.SetReadDeadline(time.Now().Add(u.cfg.AckTimeout))
		next, err := readAck(br)
		if err != nil {
			u.mu.Lock()
			u.stats.AckFailures++
			u.mu.Unlock()
			u.event(Event{Kind: "ack-fail", Err: err.Error()})
			ackErr <- err
			return
		}
		acked.Store(true)
		u.ackTo(next)
		u.event(Event{Kind: "ack", ID: next})
	}
}

// ackTo applies one cumulative ACK: it releases every spooled entry below
// next — closing each traced frame's wire.ack span stage via ackVisit —
// mirrors the watermark and depth onto the obs surfaces, and wakes drain
// waiters.
func (u *ResilientUplink) ackTo(next uint64) {
	u.spool.AckBelowVisit(next, u.ackVisit)
	u.notifyDrain()
	if u.om != nil {
		u.om.ackWatermark(u.spool.Acked())
		u.om.spoolDepth(u.spool.Len())
	}
}

// backoff computes exponential redial delays with deterministic jitter.
// The jitter stream is a splitmix64 generator over the configured seed —
// not math/rand, whose construction is reserved to the seeded-RNG
// packages by the seqdeterminism analyzer — so the same seed reproduces
// the same delay sequence, which is what makes chaos-test retry traces
// comparable across runs.
type backoff struct {
	base, max time.Duration
	attempt   int
	state     uint64
}

func newBackoff(base, max time.Duration, seed int64) backoff {
	return backoff{base: base, max: max, state: uint64(seed)*0x9e3779b97f4a7c15 + 1}
}

// next returns the delay for the current attempt: cap(base·2^attempt)
// jittered into [d/2, d].
func (b *backoff) next() time.Duration {
	d := b.base
	for i := 0; i < b.attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.attempt++
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(splitmix64(&b.state)%uint64(half+1))
}

func (b *backoff) reset() { b.attempt = 0 }

// splitmix64 is the standard SplitMix64 step (Steele et al.), enough for
// jitter and fully reproducible from the seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
