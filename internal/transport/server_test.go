package transport

import (
	"bufio"
	"bytes"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/obs"
	"repro/internal/store"
)

// sessionClient is a raw reliable-session client for collector tests:
// hand-rolled hello, frames, and ACK reads, so tests can drive exactly
// the wire interleavings the resilient uplink would never produce.
type sessionClient struct {
	conn net.Conn
	w    *Writer
	br   *bufio.Reader
}

func dialSession(t *testing.T, addr string, deviceID uint64) *sessionClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHello(conn, deviceID); err != nil {
		t.Fatal(err)
	}
	return &sessionClient{conn: conn, w: NewWriter(conn), br: bufio.NewReader(conn)}
}

func (s *sessionClient) send(t *testing.T, f Frame) {
	t.Helper()
	if err := s.w.Send(f); err != nil {
		t.Fatal(err)
	}
	if err := s.w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func (s *sessionClient) ack(t *testing.T) uint64 {
	t.Helper()
	_ = s.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	next, err := readAck(s.br)
	if err != nil {
		t.Fatalf("reading ack: %v", err)
	}
	return next
}

// TestCollectorWatermarkOverflowRejected is the regression for the
// watermark wrap bug: a frame with ID MaxUint64 used to set
// next = ID+1 = 0, silently re-opening every past ID for redelivery.
// The collector must reject the frame as a bad connection and keep the
// watermark (and dedup) intact.
func TestCollectorWatermarkOverflowRejected(t *testing.T) {
	col := NewCollector(compress.DefaultRegistry(4), nil)
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	s := dialSession(t, addr.String(), 42)
	s.send(t, smallFrame(0))
	if next := s.ack(t); next != 1 {
		t.Fatalf("ack after frame 0 = %d, want 1", next)
	}
	overflow := smallFrame(0)
	overflow.ID = math.MaxUint64
	s.send(t, overflow)
	// The collector drops the connection without acking the poison frame.
	_ = s.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readAck(s.br); err == nil {
		t.Fatal("collector acked a watermark-overflowing frame")
	}
	_ = s.conn.Close()

	// Reconnect and retransmit frame 0: with the watermark intact it is a
	// duplicate. Under the wrap bug it would be delivered a second time.
	s2 := dialSession(t, addr.String(), 42)
	defer s2.conn.Close()
	s2.send(t, smallFrame(0))
	if next := s2.ack(t); next != 1 {
		t.Fatalf("ack after retransmit = %d, want 1 (watermark lost)", next)
	}
	if f, d := col.Frames(), col.Duplicates(); f != 1 || d != 1 {
		t.Fatalf("frames=%d duplicates=%d, want 1 and 1 (exactly-once broken)", f, d)
	}
	if col.BadConns() == 0 {
		t.Fatal("overflow frame was not counted as a bad connection")
	}
	if next, ok := col.Acked(42); !ok || next != 1 {
		t.Fatalf("device watermark = %d ok=%v, want 1 true", next, ok)
	}
}

// TestCollectorSameDeviceSessionsSerializedAndOrdered is the regression
// for concurrent same-device sink races: a zombie connection surviving a
// redial could invoke the sink concurrently and out of ID order, because
// delivery was decided under the lock but the sink ran outside it. With
// single-writer sessions the second connection kicks the first, and sink
// calls are serialized and ID-ordered per device.
func TestCollectorSameDeviceSessionsSerializedAndOrdered(t *testing.T) {
	o := obs.New(64)
	var mu sync.Mutex
	var order []uint64
	inSink, maxConc := 0, 0
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	sink := func(f Frame, _ []float64) {
		mu.Lock()
		inSink++
		if inSink > maxConc {
			maxConc = inSink
		}
		order = append(order, f.ID)
		mu.Unlock()
		if f.ID == 0 {
			once.Do(func() {
				entered <- struct{}{}
				<-release // park the zombie session mid-sink
			})
		}
		mu.Lock()
		inSink--
		mu.Unlock()
	}
	col := NewCollector(compress.DefaultRegistry(4), sink).Instrument(o)
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// Session A delivers frame 0 and parks inside the sink — a zombie
	// connection mid-delivery.
	a := dialSession(t, addr.String(), 9)
	defer a.conn.Close()
	a.send(t, smallFrame(0))
	<-entered

	// Session B redials with the same device ID while A is mid-sink and
	// retransmits everything unacked, then continues with frame 1.
	b := dialSession(t, addr.String(), 9)
	defer b.conn.Close()
	b.send(t, smallFrame(0))
	b.send(t, smallFrame(1))
	// Give a racy collector time to (wrongly) run B's delivery while A is
	// still parked, then let A finish.
	time.Sleep(100 * time.Millisecond)
	close(release)

	if next := b.ack(t); next != 1 {
		t.Fatalf("first ack on B = %d, want 1", next)
	}
	if next := b.ack(t); next != 2 {
		t.Fatalf("second ack on B = %d, want 2", next)
	}

	mu.Lock()
	defer mu.Unlock()
	if maxConc != 1 {
		t.Fatalf("sink ran %d-way concurrent for one device", maxConc)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("sink order = %v, want [0 1]", order)
	}
	if col.Frames() != 2 || col.Duplicates() != 1 {
		t.Fatalf("frames=%d duplicates=%d, want 2 and 1", col.Frames(), col.Duplicates())
	}
	if col.Kicked() != 1 {
		t.Fatalf("kicked = %d, want 1", col.Kicked())
	}
	if v := o.Registry().Counter("transport.collector.sessions_kicked").Value(); v != 1 {
		t.Fatalf("sessions_kicked counter = %d, want 1", v)
	}
}

// TestCollectorIdleEviction: devices beyond the idle bound are evicted
// down to a watermark entry, and dedup survives both the eviction and a
// collector restart carrying the serialized watermark table.
func TestCollectorIdleEviction(t *testing.T) {
	reg := compress.DefaultRegistry(4)
	col := NewCollectorWith(reg, nil, CollectorConfig{Shards: 4, MaxIdleDevices: 2})
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const devices = 6
	for id := uint64(1); id <= devices; id++ {
		s := dialSession(t, addr.String(), id)
		s.send(t, smallFrame(0))
		if next := s.ack(t); next != 1 {
			t.Fatalf("device %d ack = %d, want 1", id, next)
		}
		_ = s.conn.Close()
		// Detach is asynchronous; wait for the handler to let go before
		// the next device connects so the idle accounting is sequential.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if next, ok := col.Acked(id); ok && next == 1 && col.ResidentDevices() <= 2+int(id) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("device %d never detached", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.ResidentDevices() > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("resident devices = %d, want <= 2", col.ResidentDevices())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if col.Evictions() < devices-2 {
		t.Fatalf("evictions = %d, want >= %d", col.Evictions(), devices-2)
	}

	// An evicted device reconnecting and retransmitting must still dedup:
	// its watermark was preserved in the table.
	s := dialSession(t, addr.String(), 6)
	s.send(t, smallFrame(0))
	if next := s.ack(t); next != 1 {
		t.Fatalf("evicted device retransmit ack = %d, want 1", next)
	}
	_ = s.conn.Close()
	if col.Duplicates() == 0 {
		t.Fatal("retransmit to evicted device was not deduplicated")
	}

	// Serialize the watermark table, restart the collector with it, and
	// verify dedup survives the restart.
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := col.Watermarks().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wm, err := store.ReadWatermarks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	col2 := NewCollectorWith(reg, nil, CollectorConfig{MaxIdleDevices: 2, Watermarks: wm})
	addr2, err := col2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	s2 := dialSession(t, addr2.String(), 3)
	defer s2.conn.Close()
	s2.send(t, smallFrame(0))
	if next := s2.ack(t); next != 1 {
		t.Fatalf("post-restart retransmit ack = %d, want 1", next)
	}
	if col2.Frames() != 0 || col2.Duplicates() != 1 {
		t.Fatalf("post-restart frames=%d duplicates=%d, want 0 and 1", col2.Frames(), col2.Duplicates())
	}
}

// TestCollectorEvictReattachRace is the regression for the eviction
// window bug: detach used to delete the device from its shard map and
// release the shard lock *before* storing the watermark into the table,
// so a device redialing in that window found neither resident state nor
// a watermark entry, seeded next=0, and redelivered everything — exactly
// during the herd-reconnect scenario eviction exists for. Hammer
// immediate evict/reattach cycles (the idle slot is pinned by a filler
// device, so every detach of the hot device evicts) and assert the sink
// never sees a frame twice.
func TestCollectorEvictReattachRace(t *testing.T) {
	reg := compress.DefaultRegistry(4)
	var mu sync.Mutex
	counts := map[uint64]int{}
	col := NewCollectorWith(reg, func(f Frame, _ []float64) {
		mu.Lock()
		counts[f.ID]++
		mu.Unlock()
	}, CollectorConfig{Shards: 1, MaxIdleDevices: 1})
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// The filler device detaches first and occupies the single idle
	// slot, so every later detach of device 1 takes the evict path.
	const fillerID, fillerFrame = 2, uint64(1000)
	filler := dialSession(t, addr.String(), fillerID)
	filler.send(t, smallFrame(fillerFrame))
	if next := filler.ack(t); next != fillerFrame+1 {
		t.Fatalf("filler ack = %d, want %d", next, fillerFrame+1)
	}
	_ = filler.conn.Close()
	// Detach is asynchronous; its non-evict path stores the watermark,
	// which is the signal that the idle slot is taken.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := col.Watermarks().Load(fillerID); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("filler never detached")
		}
		time.Sleep(time.Millisecond)
	}

	// Evict/reattach cycles: close and immediately redial, so attach
	// races the previous handler's evicting detach. Frame 0 is resent
	// every cycle; if any interleaving loses the watermark it is
	// redelivered and the per-ID count breaks.
	const cycles = 200
	for i := uint64(0); i < cycles; i++ {
		s := dialSession(t, addr.String(), 1)
		if i > 0 {
			s.send(t, smallFrame(0))
			if next := s.ack(t); next != i {
				t.Fatalf("cycle %d: dup ack = %d, want %d (watermark lost)", i, next, i)
			}
		}
		s.send(t, smallFrame(i))
		if next := s.ack(t); next != i+1 {
			t.Fatalf("cycle %d: ack = %d, want %d", i, next, i+1)
		}
		_ = s.conn.Close()
	}

	mu.Lock()
	defer mu.Unlock()
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("frame %d delivered %d times, want exactly once", id, n)
		}
	}
	if len(counts) != cycles+1 {
		t.Fatalf("delivered %d distinct frames, want %d", len(counts), cycles+1)
	}
	if f, d := col.Frames(), col.Duplicates(); f != cycles+1 || d != cycles-1 {
		t.Fatalf("frames=%d duplicates=%d, want %d and %d", f, d, cycles+1, cycles-1)
	}
}

// TestResilientPipelinedDelivery: the version-2 protocol delivers
// exactly once with coalesced ACKs, and WaitDrain's notification path
// (no polling) sees the drain.
func TestResilientPipelinedDelivery(t *testing.T) {
	reg := compress.DefaultRegistry(4)
	var mu sync.Mutex
	counts := map[uint64]int{}
	col := NewCollectorWith(reg, func(f Frame, _ []float64) {
		mu.Lock()
		counts[f.ID]++
		mu.Unlock()
	}, CollectorConfig{AckEvery: 8})
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	up, err := DialResilient(ResilientConfig{
		Addr: addr.String(), DeviceID: 11, Protocol: 2, AckEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 64
	for i := uint64(0); i < frames; i++ {
		if err := up.Send(smallFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.WaitDrain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	if got := up.Acked(); got != frames {
		t.Fatalf("uplink watermark = %d, want %d", got, frames)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(counts) != frames {
		t.Fatalf("delivered %d distinct frames, want %d", len(counts), frames)
	}
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("frame %d delivered %d times", id, n)
		}
	}
	if col.Frames() != frames {
		t.Fatalf("collector frames = %d, want %d", col.Frames(), frames)
	}
}

// TestResilientPipelinedRedial: a connection reset mid-stream on the
// pipelined protocol triggers a redial and retransmit; the collector's
// watermark keeps delivery exactly-once.
func TestResilientPipelinedRedial(t *testing.T) {
	reg := compress.DefaultRegistry(4)
	var mu sync.Mutex
	counts := map[uint64]int{}
	col := NewCollector(reg, func(f Frame, _ []float64) {
		mu.Lock()
		counts[f.ID]++
		mu.Unlock()
	})
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// Kill the first connection after it is established so the uplink
	// has to back off, redial, and resend whatever was unacked.
	var dialMu sync.Mutex
	dials := 0
	dialer := func(a string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", a, timeout)
		dialMu.Lock()
		first := dials == 0
		dials++
		dialMu.Unlock()
		if err == nil && first {
			go func() {
				time.Sleep(20 * time.Millisecond)
				_ = conn.Close()
			}()
		}
		return conn, err
	}
	up, err := DialResilient(ResilientConfig{
		Addr: addr.String(), DeviceID: 13, Protocol: 2, AckEvery: 4,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Dialer: dialer,
	})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 40
	for i := uint64(0); i < frames; i++ {
		if err := up.Send(smallFrame(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // stretch the stream across the reset
	}
	if err := up.WaitDrain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(counts) != frames {
		t.Fatalf("delivered %d distinct frames, want %d", len(counts), frames)
	}
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("frame %d delivered %d times", id, n)
		}
	}
}

// TestAllocsCollectorDecode pins the pooled-decode contract: after
// warm-up, decoding a frame on the collector hot path performs no
// steady-state heap allocations beyond occasional pool refills.
func TestAllocsCollectorDecode(t *testing.T) {
	c := NewCollector(compress.DefaultRegistry(4), nil)
	frame := smallFrame(3)
	for i := 0; i < 400; i++ {
		values, release := c.decode(frame)
		_ = values
		release()
	}
	avg := testing.AllocsPerRun(300, func() {
		values, release := c.decode(frame)
		_ = values
		release()
	})
	if avg > 1.0 {
		t.Fatalf("collector decode allocates %.2f/op, want <= 1.0", avg)
	}
}
