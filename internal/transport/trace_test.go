package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/obs"
)

// tracedFrame is smallFrame with a span identity stamped the canonical
// way (trace = segment ID + 1, never zero).
func tracedFrame(id uint64) Frame {
	f := smallFrame(id)
	f.Trace = obs.TraceOfSegment(id)
	return f
}

// TestFrameTraceRoundTrip pins the AES2 header: a traced frame leads
// with the v2 magic and round-trips its trace identity; everything else
// matches the v1 layout.
func TestFrameTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := tracedFrame(3)
	want.Trace = 1 << 40 // multi-byte uvarint
	if err := w.Send(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("AES2")) {
		t.Fatalf("traced frame magic = %q, want AES2", buf.Bytes()[:4])
	}
	got, err := NewReader(&buf).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != want.Trace || got.ID != want.ID || got.Label != want.Label {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	if got.Enc.Codec != want.Enc.Codec || !bytes.Equal(got.Enc.Data, want.Enc.Data) {
		t.Fatalf("payload drifted: %+v", got.Enc)
	}
}

// TestFrameUntracedByteIdentical pins wire compatibility: a zero-trace
// frame must serialize byte-for-byte as the original AES1 layout — the
// trace field is absent, not zero-encoded — so uninstrumented senders
// and pre-span captures stay indistinguishable.
func TestFrameUntracedByteIdentical(t *testing.T) {
	f := smallFrame(7) // Trace zero
	var got bytes.Buffer
	w := NewWriter(&got)
	if err := w.Send(f); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Hand-rolled AES1 encoding of the same frame.
	var want bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { want.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	want.WriteString("AES1")
	put(f.ID)
	put(zigzag(int64(f.Label)))
	put(uint64(len(f.Enc.Codec)))
	want.WriteString(f.Enc.Codec)
	put(uint64(f.Enc.N))
	put(uint64(len(f.Enc.Data)))
	want.Write(f.Enc.Data)

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("zero-trace frame not byte-identical to AES1:\n got %x\nwant %x", got.Bytes(), want.Bytes())
	}

	rt, err := NewReader(&got).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Trace != 0 {
		t.Fatalf("AES1 frame decoded trace %d, want 0", rt.Trace)
	}
}

// TestCollectorSpanKickEvictReattach drives traced frames through the
// session fault paths — a same-device kick, an idle eviction, and a
// reattach with retransmission — and asserts the span layer stays
// exactly-once: one collector.deliver per trace identity, duplicates
// surfacing as redeliveries on the fleet board, kicks and evictions
// counted on the device's health row.
func TestCollectorSpanKickEvictReattach(t *testing.T) {
	o := obs.New(64)
	spans := o.EnableSpans(256)
	col := NewCollectorWith(compress.DefaultRegistry(4), nil,
		CollectorConfig{Shards: 1, MaxIdleDevices: 1}).Instrument(o)
	addr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// Session A delivers frame 0, then session B kicks it and retransmits
	// frame 0 (duplicate) before continuing with frame 1.
	a := dialSession(t, addr.String(), 5)
	a.send(t, tracedFrame(0))
	if next := a.ack(t); next != 1 {
		t.Fatalf("ack = %d, want 1", next)
	}
	b := dialSession(t, addr.String(), 5)
	b.send(t, tracedFrame(0))
	b.send(t, tracedFrame(1))
	if next := b.ack(t); next != 1 {
		t.Fatalf("dup ack = %d, want 1", next)
	}
	if next := b.ack(t); next != 2 {
		t.Fatalf("ack = %d, want 2", next)
	}
	_ = a.conn.Close()

	// Occupy the single idle slot with another device, so device 5's
	// detach takes the evict path (the bound evicts the detaching device
	// once the idle slot is full).
	filler := dialSession(t, addr.String(), 6)
	filler.send(t, tracedFrame(0))
	if next := filler.ack(t); next != 1 {
		t.Fatalf("filler ack = %d, want 1", next)
	}
	_ = filler.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := col.Watermarks().Load(6); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("filler never detached")
		}
		time.Sleep(time.Millisecond)
	}

	// Device 5 detaches into a full idle set: evicted down to its
	// watermark. Then it reattaches and retransmits frame 1 (duplicate)
	// plus delivers frame 2.
	_ = b.conn.Close()
	deadline = time.Now().Add(5 * time.Second)
	for col.Evictions() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("device 5 never evicted (evictions = %d)", col.Evictions())
		}
		time.Sleep(time.Millisecond)
	}

	c := dialSession(t, addr.String(), 5)
	defer c.conn.Close()
	c.send(t, tracedFrame(1))
	if next := c.ack(t); next != 2 {
		t.Fatalf("post-evict dup ack = %d, want 2 (watermark lost)", next)
	}
	c.send(t, tracedFrame(2))
	if next := c.ack(t); next != 3 {
		t.Fatalf("ack = %d, want 3", next)
	}

	// Span layer: exactly one deliver per distinct trace across both
	// devices (3 for device 5, 1 for device 6) despite the kick, the
	// eviction and two retransmissions.
	if got := spans.StageCount(obs.StageCollectorDeliver); got != 4 {
		t.Fatalf("collector.deliver count = %d, want 4", got)
	}
	perTrace := map[[2]uint64]int{}
	for _, s := range spans.Stages() {
		if s.Stage != "collector.deliver" {
			continue
		}
		perTrace[[2]uint64{s.Device, s.Trace}]++
	}
	for k, n := range perTrace {
		if n != 1 {
			t.Fatalf("device %d trace %d delivered %d span stages, want 1", k[0], k[1], n)
		}
	}
	for _, want := range [][2]uint64{{5, 1}, {5, 2}, {5, 3}, {6, 1}} {
		if perTrace[want] != 1 {
			t.Fatalf("missing deliver span for device %d trace %d (have %v)", want[0], want[1], perTrace)
		}
	}

	// Fleet board: device 5 saw the kick, the eviction and both
	// redeliveries; watermarks advanced to the delivered counts.
	var d5 obs.DeviceHealthSnapshot
	found := false
	for _, row := range o.Fleet().Snapshot() {
		if row.Device == 5 {
			d5, found = row, true
		}
	}
	if !found {
		t.Fatal("device 5 missing from fleet board")
	}
	if d5.Delivered != 3 || d5.Redelivered != 2 {
		t.Fatalf("device 5 delivered=%d redelivered=%d, want 3/2", d5.Delivered, d5.Redelivered)
	}
	if d5.SessionKicks != 1 {
		t.Fatalf("device 5 kicks = %d, want 1", d5.SessionKicks)
	}
	if d5.Evictions == 0 {
		t.Fatal("device 5 eviction not recorded")
	}
	if d5.Watermark != 3 {
		t.Fatalf("device 5 watermark = %d, want 3", d5.Watermark)
	}
}
