package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/compress"
)

// Frame is one transmitted segment.
type Frame struct {
	// ID is the segment id on the sending device.
	ID uint64
	// Label is the segment's class label (-1 when unknown).
	Label int
	// Trace is the span identity joining this frame's collector-side
	// delivery to its device-side lifecycle (see internal/obs). Zero
	// means "no trace": the frame is emitted with the original AES1
	// header, byte-identical to pre-span senders. Non-zero traces ride
	// the AES2 header, one extra uvarint after the label.
	Trace uint64
	// Enc is the compressed representation plus codec metadata.
	Enc compress.Encoded
}

var frameMagic = [4]byte{'A', 'E', 'S', '1'}

// frameMagicV2 marks a traced frame: same layout as AES1 plus one trace
// uvarint between the label and the codec name. Readers accept both.
var frameMagicV2 = [4]byte{'A', 'E', 'S', '2'}

// ErrBadFrame is returned on malformed input.
var ErrBadFrame = errors.New("transport: bad frame")

// maxFrameData bounds a frame's payload against hostile length fields.
const maxFrameData = 1 << 30

// maxFramePoints bounds the wire-supplied point count N. The count is
// metadata (decoders allocate from it and Ratio/cost accounting divide by
// it), so a hostile uvarint up to 2^64-1 must not reach Encoded.N: it
// overflows int on 32-bit platforms and poisons every N-derived quantity.
// 1<<27 points is 1 GiB of raw float64s — matching maxFrameData — and
// comfortably fits an int32.
const maxFramePoints = 1 << 27

// Writer frames segments onto an io.Writer.
type Writer struct {
	w   *bufio.Writer
	tmp [binary.MaxVarintLen64]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (t *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(t.tmp[:], v)
	_, err := t.w.Write(t.tmp[:n])
	return err
}

// Send writes one frame. Call Flush (or Send more frames and then Flush)
// to push buffered bytes to the connection.
func (t *Writer) Send(f Frame) error {
	if len(f.Enc.Codec) == 0 || len(f.Enc.Codec) > 255 {
		return fmt.Errorf("%w: codec name %q", ErrBadFrame, f.Enc.Codec)
	}
	if f.Enc.N < 0 || f.Enc.N > maxFramePoints {
		return fmt.Errorf("%w: point count %d", ErrBadFrame, f.Enc.N)
	}
	magic := frameMagic
	if f.Trace != 0 {
		magic = frameMagicV2
	}
	if _, err := t.w.Write(magic[:]); err != nil {
		return err
	}
	if err := t.uvarint(f.ID); err != nil {
		return err
	}
	if err := t.uvarint(zigzag(int64(f.Label))); err != nil {
		return err
	}
	if f.Trace != 0 {
		if err := t.uvarint(f.Trace); err != nil {
			return err
		}
	}
	if err := t.uvarint(uint64(len(f.Enc.Codec))); err != nil {
		return err
	}
	if _, err := t.w.WriteString(f.Enc.Codec); err != nil {
		return err
	}
	if err := t.uvarint(uint64(f.Enc.N)); err != nil {
		return err
	}
	if err := t.uvarint(uint64(len(f.Enc.Data))); err != nil {
		return err
	}
	_, err := t.w.Write(f.Enc.Data)
	return err
}

// Flush pushes buffered frames downstream.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader parses frames from an io.Reader.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Recv reads the next frame. io.EOF signals a clean end of stream (the
// sender closed between frames); any mid-frame truncation is an error.
func (t *Reader) Recv() (Frame, error) {
	var magic [4]byte
	if _, err := io.ReadFull(t.r, magic[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	traced := magic == frameMagicV2
	if magic != frameMagic && !traced {
		return Frame{}, ErrBadFrame
	}
	var f Frame
	var err error
	if f.ID, err = binary.ReadUvarint(t.r); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	labelZZ, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	f.Label = int(unzigzag(labelZZ))
	if traced {
		if f.Trace, err = binary.ReadUvarint(t.r); err != nil {
			return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
	}
	nameLen, err := binary.ReadUvarint(t.r)
	if err != nil || nameLen == 0 || nameLen > 255 {
		return Frame{}, ErrBadFrame
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(t.r, name); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	f.Enc.Codec = string(name)
	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if n > maxFramePoints {
		return Frame{}, fmt.Errorf("%w: point count %d", ErrBadFrame, n)
	}
	f.Enc.N = int(n)
	dataLen, err := binary.ReadUvarint(t.r)
	if err != nil || dataLen > maxFrameData {
		return Frame{}, ErrBadFrame
	}
	f.Enc.Data = make([]byte, dataLen)
	if _, err := io.ReadFull(t.r, f.Enc.Data); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return f, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
