package transport

import (
	"time"

	"repro/internal/obs"
)

// Transport instrumentation. The uplink mirrors its delivery trace
// (Event) into obs counters and the trace ring; the collector counts
// deliveries, redeliveries and bad connections. As in core, a nil bundle
// is the disabled configuration and costs one branch per call site.
//
// Ordering note: all uplink events are emitted by the single pump
// goroutine, so their ring order is deterministic for a fixed fault
// schedule and seed. Collector events come from per-connection handler
// goroutines; only per-device order and the totals are deterministic,
// which is what the chaos test asserts (DESIGN.md §9).

// uplinkMetrics is the ResilientUplink's cached obs handles.
type uplinkMetrics struct {
	sink obs.TraceSink

	dials     *obs.Counter
	dialFails *obs.Counter
	sends     *obs.Counter
	sendFails *obs.Counter
	acks      *obs.Counter
	ackFails  *obs.Counter
	backoffs  *obs.Counter
	rejects   *obs.Counter

	pending *obs.Gauge
	depth   *obs.Histogram
	rtt     *obs.Histogram
}

func newUplinkMetrics(o *obs.Observer) *uplinkMetrics {
	if o == nil {
		return nil
	}
	reg := o.Registry()
	return &uplinkMetrics{
		sink:      o.Sink(),
		dials:     reg.Counter("transport.uplink.dials"),
		dialFails: reg.Counter("transport.uplink.dial_failures"),
		sends:     reg.Counter("transport.uplink.sends"),
		sendFails: reg.Counter("transport.uplink.send_failures"),
		acks:      reg.Counter("transport.uplink.acks"),
		ackFails:  reg.Counter("transport.uplink.ack_failures"),
		backoffs:  reg.Counter("transport.uplink.backoffs"),
		rejects:   reg.Counter("transport.uplink.spool_rejects"),
		pending:   reg.Gauge("transport.uplink.pending"),
		depth:     reg.Histogram("transport.uplink.spool_depth", obs.DepthBuckets),
		rtt:       reg.Histogram("transport.uplink.rtt_seconds", obs.LatencyBuckets),
	}
}

// event mirrors one delivery-trace Event into counters and the ring.
// Backoff delays land in Event.Value as seconds; they come from the
// seeded jitter generator, not a clock, so the event stream stays
// reproducible.
func (m *uplinkMetrics) event(e Event) {
	if m == nil {
		return
	}
	switch e.Kind {
	case "dial":
		m.dials.Inc()
	case "dial-fail":
		m.dialFails.Inc()
	case "send":
		m.sends.Inc()
	case "send-fail":
		m.sendFails.Inc()
	case "ack":
		m.acks.Inc()
	case "ack-fail":
		m.ackFails.Inc()
	case "backoff":
		m.backoffs.Inc()
	}
	if m.sink != nil {
		ev := obs.Event{Source: "transport.uplink", Kind: e.Kind, ID: e.ID, Err: e.Err}
		if e.Kind == "backoff" {
			ev.Value = e.Wait.Seconds()
		}
		m.sink.Record(ev)
	}
}

// spoolDepth records the backlog after an append or an ACK advance.
func (m *uplinkMetrics) spoolDepth(n int) {
	if m == nil {
		return
	}
	m.pending.Set(float64(n))
	m.depth.Observe(float64(n))
}

// reject counts frames the bounded spool refused (caller sheds them).
func (m *uplinkMetrics) reject() {
	if m == nil {
		return
	}
	m.rejects.Inc()
}

// rttStart and rttDone bracket one frame→ACK round trip. The clock is
// only read when instrumentation is attached.
func (m *uplinkMetrics) rttStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *uplinkMetrics) rttDone(start time.Time) {
	if m == nil {
		return
	}
	m.rtt.Observe(time.Since(start).Seconds())
}

// collectorMetrics is the Collector's cached obs handles.
type collectorMetrics struct {
	sink obs.TraceSink

	frames     *obs.Counter
	duplicates *obs.Counter
	badConns   *obs.Counter
	kicked     *obs.Counter
	evictions  *obs.Counter

	ackBatchH   *obs.Histogram
	shardDepthH *obs.Histogram
}

func newCollectorMetrics(o *obs.Observer) *collectorMetrics {
	if o == nil {
		return nil
	}
	reg := o.Registry()
	return &collectorMetrics{
		sink:        o.Sink(),
		frames:      reg.Counter("transport.collector.frames"),
		duplicates:  reg.Counter("transport.collector.duplicates"),
		badConns:    reg.Counter("transport.collector.bad_conns"),
		kicked:      reg.Counter("transport.collector.sessions_kicked"),
		evictions:   reg.Counter("transport.collector.evictions"),
		ackBatchH:   reg.Histogram("transport.collector.ack_batch", obs.DepthBuckets),
		shardDepthH: reg.Histogram("transport.collector.shard_depth", obs.DepthBuckets),
	}
}

// frame records one received frame: delivered to the sink, or dropped as
// a redelivery by the per-device watermark. Event.Value carries the
// device ID.
func (m *collectorMetrics) frame(deviceID, frameID uint64, delivered bool) {
	if m == nil {
		return
	}
	kind := "deliver"
	if delivered {
		m.frames.Inc()
	} else {
		m.duplicates.Inc()
		kind = "redeliver"
	}
	if m.sink != nil {
		m.sink.Record(obs.Event{
			Source: "transport.collector", Kind: kind,
			ID: frameID, Value: float64(deviceID),
		})
	}
}

// legacyFrame records one fire-and-forget frame (no device watermark).
func (m *collectorMetrics) legacyFrame() {
	if m == nil {
		return
	}
	m.frames.Inc()
}

// badConn records a connection dropped on malformed input.
func (m *collectorMetrics) badConn() {
	if m == nil {
		return
	}
	m.badConns.Inc()
}

// sessionKicked records a stale same-device session displaced by a newer
// connection (single-writer takeover).
func (m *collectorMetrics) sessionKicked() {
	if m == nil {
		return
	}
	m.kicked.Inc()
}

// eviction records one idle device evicted down to the watermark table.
func (m *collectorMetrics) eviction() {
	if m == nil {
		return
	}
	m.evictions.Inc()
}

// ackBatch records how many frames one cumulative ACK covered (always 1
// on the v1 lockstep path).
func (m *collectorMetrics) ackBatch(n uint64) {
	if m == nil {
		return
	}
	m.ackBatchH.Observe(float64(n))
}

// shardDepth records a shard's resident-device count after an attach or
// an eviction.
func (m *collectorMetrics) shardDepth(n int) {
	if m == nil {
		return
	}
	m.shardDepthH.Observe(float64(n))
}
