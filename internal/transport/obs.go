package transport

import (
	"time"

	"repro/internal/obs"
)

// Transport instrumentation. The uplink mirrors its delivery trace
// (Event) into obs counters and the trace ring; the collector counts
// deliveries, redeliveries and bad connections. As in core, a nil bundle
// is the disabled configuration and costs one branch per call site.
//
// Ordering note: all uplink events are emitted by the single pump
// goroutine, so their ring order is deterministic for a fixed fault
// schedule and seed. Collector events come from per-connection handler
// goroutines; only per-device order and the totals are deterministic,
// which is what the chaos test asserts (DESIGN.md §9).

// uplinkMetrics is the ResilientUplink's cached obs handles.
type uplinkMetrics struct {
	sink     obs.TraceSink
	spans    *obs.SpanRing      // nil when spans are disabled
	health   *obs.DeviceHealth  // this device's fleet-board row
	deviceID uint64

	dials     *obs.Counter
	dialFails *obs.Counter
	sends     *obs.Counter
	sendFails *obs.Counter
	acks      *obs.Counter
	ackFails  *obs.Counter
	backoffs  *obs.Counter
	rejects   *obs.Counter

	pending *obs.Gauge
	depth   *obs.Histogram
	rtt     *obs.Histogram
}

func newUplinkMetrics(o *obs.Observer, deviceID uint64) *uplinkMetrics {
	if o == nil {
		return nil
	}
	reg := o.Registry()
	return &uplinkMetrics{
		sink:      o.Sink(),
		spans:     o.Spans(),
		health:    o.Fleet().Device(deviceID),
		deviceID:  deviceID,
		dials:     reg.Counter("transport.uplink.dials"),
		dialFails: reg.Counter("transport.uplink.dial_failures"),
		sends:     reg.Counter("transport.uplink.sends"),
		sendFails: reg.Counter("transport.uplink.send_failures"),
		acks:      reg.Counter("transport.uplink.acks"),
		ackFails:  reg.Counter("transport.uplink.ack_failures"),
		backoffs:  reg.Counter("transport.uplink.backoffs"),
		rejects:   reg.Counter("transport.uplink.spool_rejects"),
		pending:   reg.Gauge("transport.uplink.pending"),
		depth:     reg.Histogram("transport.uplink.spool_depth", obs.DepthBuckets),
		rtt:       reg.Histogram("transport.uplink.rtt_seconds", obs.LatencyBuckets),
	}
}

// event mirrors one delivery-trace Event into counters and the ring.
// Backoff delays land in Event.Value as seconds; they come from the
// seeded jitter generator, not a clock, so the event stream stays
// reproducible.
func (m *uplinkMetrics) event(e Event) {
	if m == nil {
		return
	}
	switch e.Kind {
	case "dial":
		m.dials.Inc()
	case "dial-fail":
		m.dialFails.Inc()
	case "send":
		m.sends.Inc()
	case "send-fail":
		m.sendFails.Inc()
	case "ack":
		m.acks.Inc()
	case "ack-fail":
		m.ackFails.Inc()
	case "backoff":
		m.backoffs.Inc()
	}
	if m.sink != nil {
		ev := obs.Event{Source: "transport.uplink", Kind: e.Kind, ID: e.ID, Device: m.deviceID, Err: e.Err}
		if e.Kind == "backoff" {
			ev.Value = e.Wait.Seconds()
		}
		m.sink.Record(ev)
	}
}

// spoolDepth records the backlog after an append or an ACK advance.
func (m *uplinkMetrics) spoolDepth(n int) {
	if m == nil {
		return
	}
	m.pending.Set(float64(n))
	m.depth.Observe(float64(n))
	m.health.SetSpoolDepth(int64(n))
}

// spanEnqueue closes the spool.enqueue stage for a traced frame entering
// the spool (untraced frames stay span-silent) and advances the fleet
// board's spooled watermark.
func (m *uplinkMetrics) spanEnqueue(trace, frameID uint64, depth int) {
	if m == nil {
		return
	}
	m.health.NoteSpooled(frameID)
	if m.spans == nil || trace == 0 {
		return
	}
	m.spans.Record(obs.StageSpoolEnqueue, obs.SpanStage{
		Device: m.deviceID, Trace: trace, Arm: -1, Value: float64(depth),
	})
}

// spanSend records the wire.send stage: the traced frame left the device
// over the wire (retransmissions record one stage each).
func (m *uplinkMetrics) spanSend(trace, frameID uint64) {
	if m == nil || m.spans == nil || trace == 0 {
		return
	}
	m.spans.Record(obs.StageWireSend, obs.SpanStage{
		Device: m.deviceID, Trace: trace, Arm: -1, Value: float64(frameID),
	})
}

// spanAck records the wire.ack stage: the collector's cumulative ACK
// covered the traced frame and the spool released it.
func (m *uplinkMetrics) spanAck(trace, frameID uint64) {
	if m == nil || m.spans == nil || trace == 0 {
		return
	}
	m.spans.Record(obs.StageWireAck, obs.SpanStage{
		Device: m.deviceID, Trace: trace, Arm: -1, Value: float64(frameID),
	})
}

// ackWatermark mirrors the device-side cumulative ACK watermark onto the
// fleet board.
func (m *uplinkMetrics) ackWatermark(next uint64) {
	if m == nil {
		return
	}
	m.health.SetSpoolAcked(next)
}

// reject counts frames the bounded spool refused (caller sheds them).
func (m *uplinkMetrics) reject() {
	if m == nil {
		return
	}
	m.rejects.Inc()
}

// rttStart and rttDone bracket one frame→ACK round trip. The clock is
// only read when instrumentation is attached.
func (m *uplinkMetrics) rttStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *uplinkMetrics) rttDone(start time.Time) {
	if m == nil {
		return
	}
	m.rtt.Observe(time.Since(start).Seconds())
}

// collectorMetrics is the Collector's cached obs handles.
type collectorMetrics struct {
	sink  obs.TraceSink
	spans *obs.SpanRing   // nil when spans are disabled
	fleet *obs.FleetBoard // per-device scoreboard (nil when uninstrumented)

	frames     *obs.Counter
	duplicates *obs.Counter
	badConns   *obs.Counter
	kicked     *obs.Counter
	evictions  *obs.Counter

	ackBatchH   *obs.Histogram
	shardDepthH *obs.Histogram
}

func newCollectorMetrics(o *obs.Observer) *collectorMetrics {
	if o == nil {
		return nil
	}
	reg := o.Registry()
	return &collectorMetrics{
		sink:        o.Sink(),
		spans:       o.Spans(),
		fleet:       o.Fleet(),
		frames:      reg.Counter("transport.collector.frames"),
		duplicates:  reg.Counter("transport.collector.duplicates"),
		badConns:    reg.Counter("transport.collector.bad_conns"),
		kicked:      reg.Counter("transport.collector.sessions_kicked"),
		evictions:   reg.Counter("transport.collector.evictions"),
		ackBatchH:   reg.Histogram("transport.collector.ack_batch", obs.DepthBuckets),
		shardDepthH: reg.Histogram("transport.collector.shard_depth", obs.DepthBuckets),
	}
}

// device resolves the fleet-board row for a device (nil when the board is
// off; nil rows no-op). Sessions cache the result at attach so the
// per-frame path touches atomics only.
func (m *collectorMetrics) device(id uint64) *obs.DeviceHealth {
	if m == nil {
		return nil
	}
	return m.fleet.Device(id)
}

// frame records one received frame: delivered to the sink, or dropped as
// a redelivery by the per-device watermark. Event.Value carries the
// device ID (kept for pre-Device-field consumers; Event.Device carries it
// too). A traced delivery also closes the span's collector.deliver stage,
// joining the device-side stages through the propagated identity.
func (m *collectorMetrics) frame(deviceID, frameID, trace uint64, delivered bool) {
	if m == nil {
		return
	}
	kind := "deliver"
	if delivered {
		m.frames.Inc()
	} else {
		m.duplicates.Inc()
		kind = "redeliver"
	}
	if m.sink != nil {
		m.sink.Record(obs.Event{
			Source: "transport.collector", Kind: kind,
			ID: frameID, Device: deviceID, Value: float64(deviceID),
		})
	}
	if delivered && trace != 0 && m.spans != nil {
		m.spans.Record(obs.StageCollectorDeliver, obs.SpanStage{
			Device: deviceID, Trace: trace, Arm: -1, Value: float64(frameID),
		})
	}
}

// legacyFrame records one fire-and-forget frame (no device watermark).
func (m *collectorMetrics) legacyFrame() {
	if m == nil {
		return
	}
	m.frames.Inc()
}

// badConn records a connection dropped on malformed input.
func (m *collectorMetrics) badConn() {
	if m == nil {
		return
	}
	m.badConns.Inc()
}

// sessionKicked records a stale same-device session displaced by a newer
// connection (single-writer takeover).
func (m *collectorMetrics) sessionKicked() {
	if m == nil {
		return
	}
	m.kicked.Inc()
}

// eviction records one idle device evicted down to the watermark table.
func (m *collectorMetrics) eviction() {
	if m == nil {
		return
	}
	m.evictions.Inc()
}

// ackBatch records how many frames one cumulative ACK covered (always 1
// on the v1 lockstep path).
func (m *collectorMetrics) ackBatch(n uint64) {
	if m == nil {
		return
	}
	m.ackBatchH.Observe(float64(n))
}

// shardDepth records a shard's resident-device count after an attach or
// an eviction.
func (m *collectorMetrics) shardDepth(n int) {
	if m == nil {
		return
	}
	m.shardDepthH.Observe(float64(n))
}
