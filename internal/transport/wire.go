package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Reliable-session wire extensions. A resilient uplink opens each
// connection with a hello frame identifying the device; the collector
// answers segment frames on that connection with cumulative ACKs.
// Connections that do not start with a hello are legacy fire-and-forget
// streams (plain Uplink) and receive no ACKs, so the two generations of
// senders interoperate with one collector.
//
// Hello (device → collector, once per connection):
//
//	v1: magic "AEH1" | uvarint 1 | uvarint deviceID
//	v2: magic "AEH1" | uvarint 2 | uvarint deviceID | uvarint ackEvery
//
// Version 1 is the lockstep protocol: the collector answers every frame
// with an ACK before reading the next, and the device waits for it. That
// round trip per frame is what makes the seeded chaos traces
// byte-reproducible, so v1 is preserved verbatim for old devices and the
// determinism suite.
//
// Version 2 is the pipelined protocol: the device streams frames without
// waiting, and the collector coalesces ACKs — one every ackEvery frames,
// or sooner when its read side goes idle (nothing buffered), so the tail
// of a burst is acknowledged promptly. ackEvery is the device's request;
// the collector may ack more often (idle flush) but never less. ackEvery
// of 0 asks for the collector's default.
//
// ACK (collector → device):
//
//	magic "AEA1" | uvarint next
//
// next is the cumulative watermark: every segment ID < next has been
// delivered to the sink (or deduplicated). The device drops spooled
// segments below next and, after a reconnect, resends from next upward —
// at-least-once on the wire, exactly-once at the sink.

var (
	helloMagic = [4]byte{'A', 'E', 'H', '1'}
	ackMagic   = [4]byte{'A', 'E', 'A', '1'}
)

// Reliable-session protocol versions (see package comment above).
const (
	helloVersion  = 1 // lockstep: one ACK per frame, sender waits
	helloVersion2 = 2 // pipelined: batched ACKs, negotiated ackEvery
)

// hello carries the negotiated parameters of one reliable session.
type hello struct {
	deviceID uint64
	version  uint64
	ackEvery uint64 // v2 only: requested ACK coalescing factor (0 = collector default)
}

// writeHello emits a version-1 (lockstep) session hello for deviceID.
func writeHello(w io.Writer, deviceID uint64) error {
	var buf [4 + 2*binary.MaxVarintLen64]byte
	n := copy(buf[:], helloMagic[:])
	n += binary.PutUvarint(buf[n:], helloVersion)
	n += binary.PutUvarint(buf[n:], deviceID)
	_, err := w.Write(buf[:n])
	return err
}

// writeHelloV2 emits a version-2 (pipelined) session hello for deviceID,
// requesting an ACK at least every ackEvery frames.
func writeHelloV2(w io.Writer, deviceID, ackEvery uint64) error {
	var buf [4 + 3*binary.MaxVarintLen64]byte
	n := copy(buf[:], helloMagic[:])
	n += binary.PutUvarint(buf[n:], helloVersion2)
	n += binary.PutUvarint(buf[n:], deviceID)
	n += binary.PutUvarint(buf[n:], ackEvery)
	_, err := w.Write(buf[:n])
	return err
}

// readHello parses a session hello whose magic has already been peeked
// (not consumed) by the caller. A failed read is reported as the
// underlying error (torn hello), distinct from a cleanly-read but
// unsupported version.
func readHello(r *bufio.Reader) (hello, error) {
	var h hello
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if magic != helloMagic {
		return h, ErrBadFrame
	}
	version, err := binary.ReadUvarint(r)
	if err != nil {
		return h, fmt.Errorf("%w: reading hello version: %v", ErrBadFrame, err)
	}
	if version != helloVersion && version != helloVersion2 {
		return h, fmt.Errorf("%w: hello version %d", ErrBadFrame, version)
	}
	h.version = version
	h.deviceID, err = binary.ReadUvarint(r)
	if err != nil {
		return h, fmt.Errorf("%w: reading hello device id: %v", ErrBadFrame, err)
	}
	if version == helloVersion2 {
		h.ackEvery, err = binary.ReadUvarint(r)
		if err != nil {
			return h, fmt.Errorf("%w: reading hello ack interval: %v", ErrBadFrame, err)
		}
	}
	return h, nil
}

// writeAck emits a cumulative acknowledgement: all IDs < next received.
func writeAck(w io.Writer, next uint64) error {
	var buf [4 + binary.MaxVarintLen64]byte
	n := copy(buf[:], ackMagic[:])
	n += binary.PutUvarint(buf[n:], next)
	_, err := w.Write(buf[:n])
	return err
}

// readAck parses the next cumulative ACK. Truncation mid-ACK is
// ErrBadFrame, like any other torn frame.
func readAck(r *bufio.Reader) (next uint64, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if magic != ackMagic {
		return 0, ErrBadFrame
	}
	next, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return next, nil
}
