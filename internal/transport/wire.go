package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Reliable-session wire extensions. A resilient uplink opens each
// connection with a hello frame identifying the device; the collector
// answers every segment frame on that connection with a cumulative ACK.
// Connections that do not start with a hello are legacy fire-and-forget
// streams (plain Uplink) and receive no ACKs, so the two generations of
// senders interoperate with one collector.
//
// Hello (device → collector, once per connection):
//
//	magic "AEH1" | uvarint protocol version (1) | uvarint deviceID
//
// ACK (collector → device, after every frame):
//
//	magic "AEA1" | uvarint next
//
// next is the cumulative watermark: every segment ID < next has been
// delivered to the sink (or deduplicated). The device drops spooled
// segments below next and, after a reconnect, resends from next upward —
// at-least-once on the wire, exactly-once at the sink.

var (
	helloMagic = [4]byte{'A', 'E', 'H', '1'}
	ackMagic   = [4]byte{'A', 'E', 'A', '1'}
)

// helloVersion is the reliable-session protocol version.
const helloVersion = 1

// writeHello emits the session hello for deviceID.
func writeHello(w io.Writer, deviceID uint64) error {
	var buf [4 + 2*binary.MaxVarintLen64]byte
	n := copy(buf[:], helloMagic[:])
	n += binary.PutUvarint(buf[n:], helloVersion)
	n += binary.PutUvarint(buf[n:], deviceID)
	_, err := w.Write(buf[:n])
	return err
}

// readHello parses a session hello whose magic has already been peeked
// (not consumed) by the caller.
func readHello(r *bufio.Reader) (deviceID uint64, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if magic != helloMagic {
		return 0, ErrBadFrame
	}
	version, err := binary.ReadUvarint(r)
	if err != nil || version != helloVersion {
		return 0, fmt.Errorf("%w: hello version %d", ErrBadFrame, version)
	}
	deviceID, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return deviceID, nil
}

// writeAck emits a cumulative acknowledgement: all IDs < next received.
func writeAck(w io.Writer, next uint64) error {
	var buf [4 + binary.MaxVarintLen64]byte
	n := copy(buf[:], ackMagic[:])
	n += binary.PutUvarint(buf[n:], next)
	_, err := w.Write(buf[:n])
	return err
}

// readAck parses the next cumulative ACK. Truncation mid-ACK is
// ErrBadFrame, like any other torn frame.
func readAck(r *bufio.Reader) (next uint64, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if magic != ackMagic {
		return 0, ErrBadFrame
	}
	next, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return next, nil
}
