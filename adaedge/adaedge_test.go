package adaedge_test

import (
	"fmt"
	"math"
	"testing"

	"repro/adaedge"
	"repro/internal/datasets"
)

func TestPublicOnlinePath(t *testing.T) {
	engine, err := adaedge.NewOnlineEngine(adaedge.Config{
		TargetRatioOverride: 0.2,
		Objective:           adaedge.AggTarget(adaedge.Sum),
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := datasets.NewCBFStream(datasets.CBFConfig{Seed: 2})
	for i := 0; i < 40; i++ {
		series, label := stream.Next()
		if _, _, err := engine.Process(series, label); err != nil {
			t.Fatal(err)
		}
	}
	if got := engine.Stats().Segments; got != 40 {
		t.Fatalf("segments = %d", got)
	}
}

func TestPublicOfflinePath(t *testing.T) {
	engine, err := adaedge.NewOfflineEngine(adaedge.Config{
		StorageBytes: 40 << 10,
		Objective:    adaedge.SingleTarget(adaedge.TargetRatio),
		Policy:       adaedge.NewRoundRobin(),
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := datasets.NewCBFStream(datasets.CBFConfig{Seed: 4})
	for i := 0; i < 80; i++ {
		series, label := stream.Next()
		if err := engine.Ingest(series, label); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := engine.Query(adaedge.Max); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTargetRatioFor(t *testing.T) {
	got := adaedge.TargetRatioFor(4e6, adaedge.Net4G)
	if math.Abs(got-0.390625) > 1e-9 {
		t.Fatalf("R = %v", got)
	}
}

func TestPublicRegistry(t *testing.T) {
	reg := adaedge.DefaultRegistry(4)
	if len(reg.Names()) != 17 {
		t.Fatalf("codecs = %d", len(reg.Names()))
	}
	if len(adaedge.ExtendedRegistry(4).Names()) != 19 {
		t.Fatal("extended registry size")
	}
}

// The README's quickstart, verbatim.
func ExampleNewOnlineEngine() {
	engine, err := adaedge.NewOnlineEngine(adaedge.Config{
		TargetRatioOverride: 0.10,
		Objective:           adaedge.AggTarget(adaedge.Sum),
		Seed:                1,
	})
	if err != nil {
		panic(err)
	}
	segment := make([]float64, 128)
	for i := range segment {
		segment[i] = float64(i % 7)
	}
	res, enc, err := engine.Process(segment, 0)
	if err != nil {
		panic(err)
	}
	// The exact codec depends on the bandit's first exploratory pick; what
	// is guaranteed is that the target ratio is met.
	fmt.Printf("fits=%v lossless=%v points=%d\n", res.Ratio <= 0.10, !res.Lossy, enc.N)
	// Output:
	// fits=true lossless=true points=128
}
