// Package adaedge is the public API of the AdaEdge reproduction: a
// dynamic, hardware-conscious compression-selection framework for
// resource-constrained devices (Liu, Paparrizos, Elmore — ICDE 2024).
//
// The implementation lives under internal/; this package re-exports the
// stable surface a downstream application needs:
//
//   - Online engine: bandwidth-constrained selection and egress.
//   - Offline engine: storage-budgeted cascade recoding.
//   - Device: the combined lifecycle over an intermittent link.
//   - Codec registry: the lossless and lossy candidate set.
//   - Optimization targets: size, throughput, aggregation accuracy,
//     ML-task accuracy, and weighted combinations.
//   - Observability: metrics, decision tracing and debug endpoints
//     (OBSERVABILITY.md).
//
// Quickstart:
//
//	engine, err := adaedge.NewOnlineEngine(adaedge.Config{
//	    TargetRatioOverride: 0.10,
//	    Objective:           adaedge.AggTarget(adaedge.Sum),
//	})
//	res, enc, err := engine.Process(segment, label)
package adaedge

import (
	"repro/internal/bandit"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/transport"
)

// Core engine types.
type (
	// Config parameterizes every engine; zero values select the paper's
	// defaults.
	Config = core.Config
	// OnlineEngine selects compression under a bandwidth-derived target
	// ratio (paper §IV-C1).
	OnlineEngine = core.OnlineEngine
	// OfflineEngine evolves stored data inside a storage budget (paper
	// §IV-C2).
	OfflineEngine = core.OfflineEngine
	// Device runs the combined lifecycle over an intermittent link.
	Device = core.Device
	// Pipeline fans online selection across workers (paper §V-C).
	Pipeline = core.Pipeline
	// OnlineParallel fans ONE stream's codec trials across workers while
	// keeping selections byte-identical to the sequential run.
	OnlineParallel = core.OnlineParallel
	// PreparedSegment carries a segment with speculatively computed trials.
	PreparedSegment = core.PreparedSegment
	// LabeledSegment pairs segment values with a class label.
	LabeledSegment = core.LabeledSegment
	// Mux routes multiple signals to per-signal engines.
	Mux = core.Mux
	// Collector turns a point stream into fixed-size segments.
	Collector = core.Collector
	// Result describes one processed segment.
	Result = core.Result
	// Snapshot is one offline space/accuracy sample.
	Snapshot = core.Snapshot
)

// Objective types.
type (
	// Objective is a single- or multi-term optimization target.
	Objective = core.Objective
	// Term is one weighted objective component.
	Term = core.Term
	// TargetKind selects a metric.
	TargetKind = core.TargetKind
)

// Target kinds.
const (
	TargetRatio       = core.TargetRatio
	TargetThroughput  = core.TargetThroughput
	TargetAggAccuracy = core.TargetAggAccuracy
	TargetMLAccuracy  = core.TargetMLAccuracy
)

// Aggregation operators.
type Agg = query.Agg

// Supported aggregations.
const (
	Sum = query.Sum
	Avg = query.Avg
	Min = query.Min
	Max = query.Max
)

// Compression types.
type (
	// Codec is a compression method over float64 segments.
	Codec = compress.Codec
	// LossyCodec is tunable to a target compression ratio.
	LossyCodec = compress.LossyCodec
	// Recoder supports direct recoding without full decompression.
	Recoder = compress.Recoder
	// Encoded is a compressed, self-describing segment.
	Encoded = compress.Encoded
	// Registry is the codec candidate set.
	Registry = compress.Registry
)

// Hardware simulation types.
type (
	// Bandwidth is a link capacity in bytes/second.
	Bandwidth = sim.Bandwidth
	// Link is a time-varying connectivity schedule.
	Link = sim.Link
	// LinkPhase is one phase of a Link schedule.
	LinkPhase = sim.LinkPhase
)

// Network presets.
const (
	Net2G = sim.Net2G
	Net3G = sim.Net3G
	Net4G = sim.Net4G
	Net5G = sim.Net5G
)

// BanditConfig tunes the selection policies.
type BanditConfig = bandit.Config

// Policy orders offline recoding victims.
type Policy = store.Policy

// Engine constructors.
var (
	// NewOnlineEngine builds the online engine.
	NewOnlineEngine = core.NewOnlineEngine
	// NewOfflineEngine builds the offline engine.
	NewOfflineEngine = core.NewOfflineEngine
	// NewDevice builds the combined-lifecycle device.
	NewDevice = core.NewDevice
	// NewPipeline builds a multi-worker online pipeline.
	NewPipeline = core.NewPipeline
	// NewOnlineParallel wraps one engine in the single-stream pipeline.
	NewOnlineParallel = core.NewOnlineParallel
	// RunOnlineSegments processes a batch honoring Config.Workers.
	RunOnlineSegments = core.RunOnlineSegments
	// NewMux builds a multi-signal router.
	NewMux = core.NewMux
	// NewCollector builds a point-level ingest collector.
	NewCollector = core.NewCollector
)

// Objective constructors.
var (
	// SingleTarget builds a one-term objective.
	SingleTarget = core.SingleTarget
	// AggTarget optimizes one aggregation operator's accuracy.
	AggTarget = core.AggTarget
	// MLTarget optimizes agreement with a frozen model.
	MLTarget = core.MLTarget
	// MLTargetFromBytes loads a serialized model as an objective.
	MLTargetFromBytes = core.MLTargetFromBytes
	// Weighted builds a multi-term objective.
	Weighted = core.Weighted
)

// Registry constructors.
var (
	// DefaultRegistry is the paper's 17-codec candidate set.
	DefaultRegistry = compress.DefaultRegistry
	// ExtendedRegistry adds the ModelarDB- and SummaryStore-style codecs.
	ExtendedRegistry = compress.ExtendedRegistry
)

// Recoding policies.
var (
	// NewLRU is the paper's default compression-ordering policy.
	NewLRU = store.NewLRU
	// NewRoundRobin recodes strictly oldest-first (RRDTool-style).
	NewRoundRobin = store.NewRoundRobin
	// NewInformativeness recodes the least query-informative segment
	// first (paper §IV-B2).
	NewInformativeness = store.NewInformativeness
)

// TargetRatioFor derives the online target compression ratio from the
// constraints: the paper's R = B/(64·I).
func TargetRatioFor(ingestPointsPerSec float64, bw Bandwidth) float64 {
	return sim.TargetRatio(ingestPointsPerSec, bw)
}

// EnergyMeter tracks joules against an optional budget (the paper's
// deferred power constraint, §IV-A4).
type EnergyMeter = core.EnergyMeter

// DrainReport summarizes one reconnection offload window.
type DrainReport = core.DrainReport

// Transport types for shipping segments to a cloud collector.
type (
	// Frame is one transmitted segment with its codec metadata.
	Frame = transport.Frame
	// Uplink is the device-side TCP sender.
	Uplink = transport.Uplink
	// CloudCollector receives and decompresses segment frames.
	CloudCollector = transport.Collector
)

// Transport constructors.
var (
	// Dial connects an uplink to a collector.
	Dial = transport.Dial
	// NewCloudCollector builds the receiving side.
	NewCloudCollector = transport.NewCollector
)

// Observability types (see OBSERVABILITY.md). Attach an Observer via
// Config.Obs (engines), transport.ResilientConfig.Obs (uplink) or
// CloudCollector.Instrument; a nil Observer disables everything.
type (
	// Observer bundles a metric registry, a decision-trace ring, and the
	// opt-in /debug HTTP mux (JSON metrics, expvar-style vars, trace,
	// pprof).
	Observer = obs.Observer
	// TraceEvent is one structured decision-trace entry. Events carry no
	// wall-clock fields, so seeded runs reproduce identical sequences.
	TraceEvent = obs.Event
	// TraceSink receives trace events; Ring is the standard sink.
	TraceSink = obs.TraceSink
	// TraceRing is a bounded in-memory event buffer.
	TraceRing = obs.Ring
)

// Observability constructors.
var (
	// NewObserver builds an observer; ringCap <= 0 selects the default
	// trace-ring capacity.
	NewObserver = obs.New
	// NewTraceRing builds a standalone bounded event buffer.
	NewTraceRing = obs.NewRing
)

// CBFStream generates the paper's CBF sensor workload — useful for demos
// and load tests before real sensors are wired in.
type CBFStream = datasets.CBFStream

// CBFConfig parameterizes the generator.
type CBFConfig = datasets.CBFConfig

// NewCBFStream builds a deterministic synthetic sensor stream.
var NewCBFStream = datasets.NewCBFStream
